"""Tests for Flatten, Reshape and Dropout layers."""
import numpy as np
import pytest

from repro.nn import Dropout, Flatten, Reshape


@pytest.fixture()
def gen():
    return np.random.default_rng(13)


def test_flatten_shape_and_roundtrip(gen):
    layer = Flatten()
    inputs = gen.normal(size=(3, 2, 4, 5))
    output = layer.forward(inputs)
    assert output.shape == (3, 40)
    grad = layer.backward(output)
    assert grad.shape == inputs.shape
    assert np.allclose(grad, inputs)


def test_flatten_rejects_scalar_batch(gen):
    with pytest.raises(ValueError):
        Flatten().forward(np.array([1.0, 2.0]).reshape(2))


def test_reshape_shape_and_backward(gen):
    layer = Reshape((2, 6))
    inputs = gen.normal(size=(4, 12))
    output = layer.forward(inputs)
    assert output.shape == (4, 2, 6)
    grad = layer.backward(output)
    assert np.allclose(grad, inputs)


def test_reshape_element_count_mismatch(gen):
    layer = Reshape((5, 5))
    with pytest.raises(ValueError):
        layer.forward(gen.normal(size=(2, 12)))


def test_reshape_rejects_nonpositive_target():
    with pytest.raises(ValueError):
        Reshape((0, 3))


def test_dropout_eval_mode_is_identity(gen):
    layer = Dropout(0.5, seed=0)
    layer.eval()
    inputs = gen.normal(size=(10, 10))
    assert np.allclose(layer.forward(inputs), inputs)


def test_dropout_zero_rate_is_identity(gen):
    layer = Dropout(0.0, seed=0)
    inputs = gen.normal(size=(10, 10))
    assert np.allclose(layer.forward(inputs), inputs)


def test_dropout_preserves_expectation(gen):
    layer = Dropout(0.3, seed=1)
    inputs = np.ones((200, 200))
    output = layer.forward(inputs)
    assert output.mean() == pytest.approx(1.0, abs=0.02)


def test_dropout_zeroes_fraction(gen):
    layer = Dropout(0.4, seed=2)
    output = layer.forward(np.ones((100, 100)))
    zero_fraction = np.mean(output == 0.0)
    assert zero_fraction == pytest.approx(0.4, abs=0.03)


def test_dropout_backward_uses_same_mask(gen):
    layer = Dropout(0.5, seed=3)
    inputs = np.ones((50, 50))
    output = layer.forward(inputs)
    grad = layer.backward(np.ones_like(inputs))
    assert np.allclose((output == 0.0), (grad == 0.0))


def test_dropout_invalid_rate():
    with pytest.raises(ValueError):
        Dropout(1.0)
    with pytest.raises(ValueError):
        Dropout(-0.1)


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        Flatten().backward(np.ones((2, 2)))
    with pytest.raises(RuntimeError):
        Dropout(0.2).backward(np.ones((2, 2)))
