"""Tests for activation layers."""
import numpy as np
import pytest

from repro.nn import Identity, LeakyReLU, ReLU, Sigmoid, Softplus, Tanh, get_activation
from repro.nn.layers.activations import stable_sigmoid

from tests.gradcheck import check_layer_gradients


@pytest.fixture()
def gen():
    return np.random.default_rng(7)


def test_relu_forward():
    layer = ReLU()
    output = layer.forward(np.array([-2.0, -0.5, 0.0, 0.5, 2.0]))
    assert np.allclose(output, [0.0, 0.0, 0.0, 0.5, 2.0])


def test_relu_backward_masks_negative():
    layer = ReLU()
    layer.forward(np.array([-1.0, 1.0]))
    grad = layer.backward(np.array([5.0, 5.0]))
    assert np.allclose(grad, [0.0, 5.0])


def test_leaky_relu_forward_and_backward():
    layer = LeakyReLU(negative_slope=0.1)
    output = layer.forward(np.array([-2.0, 3.0]))
    assert np.allclose(output, [-0.2, 3.0])
    grad = layer.backward(np.array([1.0, 1.0]))
    assert np.allclose(grad, [0.1, 1.0])


def test_leaky_relu_rejects_negative_slope():
    with pytest.raises(ValueError):
        LeakyReLU(negative_slope=-0.1)


def test_sigmoid_range_and_midpoint():
    layer = Sigmoid()
    output = layer.forward(np.array([-100.0, 0.0, 100.0]))
    assert output[0] == pytest.approx(0.0, abs=1e-30)
    assert output[1] == pytest.approx(0.5)
    assert output[2] == pytest.approx(1.0)


def test_stable_sigmoid_no_overflow():
    values = stable_sigmoid(np.array([-1000.0, 1000.0]))
    assert np.all(np.isfinite(values))
    assert values[0] == pytest.approx(0.0, abs=1e-12)
    assert values[1] == pytest.approx(1.0, abs=1e-12)


def test_tanh_matches_numpy(gen):
    layer = Tanh()
    inputs = gen.normal(size=(4, 5))
    assert np.allclose(layer.forward(inputs), np.tanh(inputs))


def test_softplus_positive_and_asymptotic(gen):
    layer = Softplus()
    inputs = np.array([-50.0, 0.0, 50.0])
    output = layer.forward(inputs)
    assert np.all(output > 0)
    assert output[2] == pytest.approx(50.0, rel=1e-6)


def test_identity_passthrough(gen):
    layer = Identity()
    inputs = gen.normal(size=(3, 3))
    assert np.allclose(layer.forward(inputs), inputs)
    assert np.allclose(layer.backward(inputs), inputs)


@pytest.mark.parametrize("cls", [ReLU, LeakyReLU, Sigmoid, Tanh, Softplus])
def test_gradients_match_numerical(cls, gen):
    layer = cls()
    # Avoid the ReLU kink at exactly zero by shifting inputs away from it.
    inputs = gen.normal(size=(4, 6)) + 0.05
    check_layer_gradients(layer, inputs, (4, 6), gen, atol=1e-5)


def test_get_activation_registry():
    assert isinstance(get_activation("relu"), ReLU)
    assert isinstance(get_activation("TANH"), Tanh)
    with pytest.raises(KeyError):
        get_activation("swishy")


def test_backward_before_forward_raises():
    with pytest.raises(RuntimeError):
        ReLU().backward(np.ones(3))
