"""Tests for the Conv2D layer and the im2col helpers."""
import numpy as np
import pytest

from repro.nn import Conv2D
from repro.nn.layers.conv import col2im, conv_output_size, im2col

from tests.gradcheck import check_layer_gradients


@pytest.fixture()
def gen():
    return np.random.default_rng(21)


def test_conv_output_size():
    assert conv_output_size(8, 3, 1, 1) == 8
    assert conv_output_size(8, 3, 1, 0) == 6
    assert conv_output_size(8, 2, 2, 0) == 4
    with pytest.raises(ValueError):
        conv_output_size(2, 5, 1, 0)


def test_im2col_col2im_roundtrip_counts(gen):
    images = gen.normal(size=(2, 3, 6, 6))
    cols = im2col(images, (3, 3), (1, 1), (1, 1))
    assert cols.shape == (2, 3 * 9, 36)
    back = col2im(cols, images.shape, (3, 3), (1, 1), (1, 1))
    # col2im accumulates overlaps; interior pixels are counted 9 times.
    assert back.shape == images.shape
    assert np.allclose(back[:, :, 2:4, 2:4], 9.0 * images[:, :, 2:4, 2:4])


def test_forward_shape_same_padding(gen):
    layer = Conv2D(1, 4, 3, padding="same", seed=0)
    output = layer.forward(gen.normal(size=(2, 1, 10, 10)))
    assert output.shape == (2, 4, 10, 10)


def test_forward_shape_valid_and_stride(gen):
    layer = Conv2D(2, 3, 3, stride=2, padding=0, seed=0)
    output = layer.forward(gen.normal(size=(1, 2, 9, 9)))
    assert output.shape == (1, 3, 4, 4)


def test_identity_kernel_reproduces_input(gen):
    layer = Conv2D(1, 1, 1, use_bias=False, seed=0)
    layer.weight.value[...] = 1.0
    inputs = gen.normal(size=(2, 1, 5, 5))
    assert np.allclose(layer.forward(inputs), inputs)


def test_known_convolution_result():
    layer = Conv2D(1, 1, 3, padding=0, use_bias=False, seed=0)
    layer.weight.value[...] = 1.0  # box filter: output = sum of 3x3 patch
    inputs = np.arange(25, dtype=float).reshape(1, 1, 5, 5)
    output = layer.forward(inputs)
    assert output.shape == (1, 1, 3, 3)
    assert output[0, 0, 0, 0] == pytest.approx(inputs[0, 0, :3, :3].sum())


def test_bias_added_per_channel(gen):
    layer = Conv2D(1, 2, 1, seed=0)
    layer.weight.value[...] = 0.0
    layer.bias.value[:] = [1.5, -2.0]
    output = layer.forward(np.zeros((1, 1, 3, 3)))
    assert np.allclose(output[0, 0], 1.5)
    assert np.allclose(output[0, 1], -2.0)


def test_gradients_match_numerical(gen):
    layer = Conv2D(2, 3, 3, padding=1, seed=1)
    inputs = gen.normal(size=(2, 2, 5, 5))
    check_layer_gradients(layer, inputs, (2, 3, 5, 5), gen, atol=1e-6)


def test_gradients_match_numerical_with_stride(gen):
    layer = Conv2D(1, 2, 3, stride=2, padding=1, seed=1)
    inputs = gen.normal(size=(2, 1, 6, 6))
    check_layer_gradients(layer, inputs, (2, 2, 3, 3), gen, atol=1e-6)


def test_invalid_inputs_raise(gen):
    layer = Conv2D(2, 3, 3, seed=0)
    with pytest.raises(ValueError):
        layer.forward(gen.normal(size=(2, 1, 5, 5)))  # wrong channels
    with pytest.raises(ValueError):
        layer.forward(gen.normal(size=(2, 5, 5)))  # wrong rank


def test_same_padding_requires_odd_kernel():
    with pytest.raises(ValueError):
        Conv2D(1, 1, 4, padding="same")


def test_same_padding_requires_unit_stride():
    with pytest.raises(ValueError):
        Conv2D(1, 1, 3, stride=2, padding="same")


def test_output_shape_helper():
    layer = Conv2D(1, 8, 5, padding=2, seed=0)
    assert layer.output_shape(40, 40) == (8, 40, 40)
