"""Edge cases of the vectorized conv / pooling / recurrent kernels.

Covers the geometries the vectorized rewrites are most likely to get wrong:
stride > 1, even kernels under 'same' padding (rejected), empty minibatches,
single-channel inputs and non-square images.
"""
from __future__ import annotations

import numpy as np
import pytest

from repro.nn.layers.conv import Conv2D, conv2d_forward_reference
from repro.nn.layers.pooling import AveragePool2D, GlobalAveragePool2D, MaxPool2D
from repro.nn.layers.recurrent import GRU, LSTM, SimpleRNN

RECURRENT_CLASSES = [SimpleRNN, GRU, LSTM]


@pytest.fixture()
def gen():
    return np.random.default_rng(77)


# -- stride > 1 --------------------------------------------------------------


@pytest.mark.parametrize("stride", [2, 3, (2, 3)])
def test_conv_stride_geometry_and_gradients(gen, gradcheck, stride):
    layer = Conv2D(1, 2, 3, stride=stride, padding=1, seed=5)
    inputs = gen.normal(size=(2, 1, 7, 7))
    output = layer.forward(inputs)
    sh, sw = layer.stride
    expected = (2, 2, (7 + 2 - 3) // sh + 1, (7 + 2 - 3) // sw + 1)
    assert output.shape == expected
    gradcheck.layer(layer, inputs, expected, gen, atol=1e-6)


def test_conv_stride_larger_than_kernel(gen):
    layer = Conv2D(1, 1, 2, stride=4, padding=0, seed=5)
    inputs = gen.normal(size=(1, 1, 10, 10))
    vectorized = layer.forward(inputs)
    reference = conv2d_forward_reference(
        inputs, layer.weight.value, layer.bias.value, layer.stride, layer.padding
    )
    assert vectorized.shape == (1, 1, 3, 3)
    assert np.allclose(vectorized, reference)


# -- even kernels under 'same' padding are rejected ---------------------------


@pytest.mark.parametrize("kernel", [2, 4, (3, 2), (2, 3)])
def test_even_kernel_same_padding_rejected(kernel):
    with pytest.raises(ValueError, match="odd kernel"):
        Conv2D(1, 1, kernel, padding="same")


def test_even_kernel_allowed_with_explicit_padding(gen):
    layer = Conv2D(1, 1, 2, padding=0, seed=0)
    assert layer.forward(gen.normal(size=(1, 1, 4, 4))).shape == (1, 1, 3, 3)


# -- empty batch --------------------------------------------------------------


def test_conv_empty_batch_roundtrip():
    layer = Conv2D(2, 3, 3, padding=1, seed=0)
    empty = np.zeros((0, 2, 6, 6))
    output = layer.forward(empty)
    assert output.shape == (0, 3, 6, 6)
    grad = layer.backward(np.zeros(output.shape))
    assert grad.shape == empty.shape
    assert np.allclose(layer.weight.grad, 0.0)


@pytest.mark.parametrize("layer_factory", [lambda: AveragePool2D(2), lambda: MaxPool2D(2)])
def test_pooling_empty_batch_roundtrip(layer_factory):
    layer = layer_factory()
    empty = np.zeros((0, 1, 4, 4))
    output = layer.forward(empty)
    assert output.shape == (0, 1, 2, 2)
    assert layer.backward(np.zeros(output.shape)).shape == empty.shape


@pytest.mark.parametrize("cls", RECURRENT_CLASSES)
def test_recurrent_empty_batch_roundtrip(cls):
    layer = cls(input_size=3, hidden_size=4, seed=0)
    empty = np.zeros((0, 5, 3))
    output = layer.forward(empty)
    assert output.shape == (0, 4)
    grad = layer.backward(np.zeros(output.shape))
    assert grad.shape == empty.shape
    assert np.allclose(layer.w_x.grad, 0.0)


# -- single channel -----------------------------------------------------------


def test_single_channel_conv_gradients(gen, gradcheck):
    layer = Conv2D(1, 1, 3, padding=1, seed=9)
    inputs = gen.normal(size=(2, 1, 5, 5))
    gradcheck.layer(layer, inputs, (2, 1, 5, 5), gen, atol=1e-6)


def test_single_channel_pooling(gen):
    inputs = gen.normal(size=(2, 1, 6, 6))
    assert AveragePool2D(3).forward(inputs).shape == (2, 1, 2, 2)
    assert MaxPool2D(6).forward(inputs).shape == (2, 1, 1, 1)
    assert GlobalAveragePool2D().forward(inputs).shape == (2, 1)


# -- non-square inputs --------------------------------------------------------


def test_conv_non_square_input_and_gradients(gen, gradcheck):
    layer = Conv2D(2, 2, 3, padding=1, seed=4)
    inputs = gen.normal(size=(2, 2, 3, 9))
    assert layer.forward(inputs).shape == (2, 2, 3, 9)
    gradcheck.layer(layer, inputs, (2, 2, 3, 9), gen, atol=1e-6)


def test_pooling_non_square_input(gen, gradcheck):
    layer = AveragePool2D((2, 5))
    inputs = gen.normal(size=(1, 2, 4, 10))
    assert layer.forward(inputs).shape == (1, 2, 2, 2)
    gradcheck.layer(layer, inputs, (1, 2, 2, 2), gen)


def test_maxpool_non_square_gradcheck(gen, gradcheck):
    layer = MaxPool2D((4, 2))
    inputs = gen.normal(size=(2, 1, 8, 6))
    gradcheck.layer(layer, inputs, (2, 1, 2, 3), gen, atol=1e-5)


@pytest.mark.parametrize("cls", RECURRENT_CLASSES)
def test_recurrent_single_step_sequence(cls, gen, gradcheck):
    """sequence_length=1 degenerates the recurrence to a feedforward cell."""
    layer = cls(input_size=4, hidden_size=3, seed=1)
    inputs = gen.normal(size=(3, 1, 4))
    assert layer.forward(inputs).shape == (3, 3)
    gradcheck.layer(layer, inputs, (3, 3), gen, atol=1e-6)
