"""Tests for the unified save_state/load_state and the state-tree archive."""
import os

import numpy as np
import pytest

from repro.nn import Adam, Dense, Sequential, load_parameters, save_parameters
from repro.nn.serialization import (
    flatten_state_tree,
    load_state,
    load_state_tree,
    parameters_allclose,
    save_state,
    save_state_tree,
    unflatten_state_tree,
)
from repro.utils import as_generator, capture_generator_state


def small_model(seed=0):
    return Sequential([Dense(4, 3, seed=seed, name="d0"), Dense(3, 1, seed=seed + 1, name="d1")])


# -- state trees ---------------------------------------------------------------------


def test_state_tree_roundtrip(tmp_path):
    rng_state = capture_generator_state(as_generator(7))
    tree = {
        "arrays": {"x": np.arange(6.0).reshape(2, 3), "y": np.zeros(0)},
        "meta": {"count": 3, "label": "run", "ratio": 0.5, "flag": True, "none": None},
        "records": [{"epoch": 1, "loss": float("nan")}, {"epoch": 2, "loss": 0.25}],
        "rng": rng_state,
        "empty": {},
    }
    path = save_state_tree(tmp_path / "tree", tree)
    assert path.endswith(".npz")
    back = load_state_tree(path)
    assert np.array_equal(back["arrays"]["x"], tree["arrays"]["x"])
    assert back["arrays"]["y"].size == 0
    assert back["meta"] == tree["meta"]
    assert back["records"][0]["loss"] != back["records"][0]["loss"]  # NaN survives
    assert back["records"][1] == {"epoch": 2, "loss": 0.25}
    assert back["rng"] == rng_state  # big ints exact through JSON
    assert back["empty"] == {}


def test_flatten_rejects_reserved_keys():
    with pytest.raises(ValueError, match="reserved"):
        flatten_state_tree({"a//b": np.zeros(1)})
    with pytest.raises(ValueError, match="reserved"):
        flatten_state_tree({"a:json": np.zeros(1)})
    with pytest.raises(TypeError):
        flatten_state_tree({1: np.zeros(1)})


def test_unflatten_inverts_flatten():
    tree = {"a": {"b": {"c": np.ones(2)}, "n": 4}, "top": "x"}
    assert set(unflatten_state_tree(flatten_state_tree(tree))) == {"a", "top"}


def test_load_state_tree_missing_file(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_state_tree(tmp_path / "nope.npz")


# -- unified training state ----------------------------------------------------------


def test_save_state_restores_model_optimizer_and_rng(tmp_path):
    model = small_model(seed=0)
    optimizer = Adam(model.parameters(), learning_rate=3e-3)
    rng = as_generator(11)
    rng.normal(size=4)  # advance the stream
    for parameter in model.parameters():
        parameter.grad = np.ones_like(parameter.value)
    optimizer.step()

    path = save_state(
        tmp_path / "state", model=model, optimizer=optimizer, rng=rng,
        extra={"epoch": 7},
    )

    other = small_model(seed=9)
    other_optimizer = Adam(other.parameters(), learning_rate=0.9)
    other_rng = as_generator(0)
    tree = load_state(path, model=other, optimizer=other_optimizer, rng=other_rng)
    assert parameters_allclose(model, other)
    assert other_optimizer.step_count == 1
    assert other_optimizer.learning_rate == pytest.approx(3e-3)
    assert np.array_equal(other_rng.normal(size=3), rng.normal(size=3))
    assert tree["extra"]["epoch"] == 7


def test_save_state_requires_something():
    with pytest.raises(ValueError, match="nothing to save"):
        save_state("unused")


def test_load_state_missing_section(tmp_path):
    model = small_model()
    path = save_state(tmp_path / "weights-only", model=model)
    with pytest.raises(KeyError, match="optimizer"):
        load_state(path, optimizer=Adam(model.parameters(), learning_rate=1e-3))


# -- atomic parameter files ----------------------------------------------------------


def test_save_parameters_is_atomic_and_leaves_no_tmp_files(tmp_path):
    model = small_model()
    target = tmp_path / "weights.npz"
    save_parameters(model, target)
    # Overwrite with different values: the final file is always complete.
    for parameter in model.parameters():
        parameter.value += 1.0
    save_parameters(model, target)
    leftovers = [name for name in os.listdir(tmp_path) if "tmp" in name]
    assert leftovers == []
    fresh = small_model(seed=5)
    load_parameters(fresh, target)
    assert parameters_allclose(model, fresh)


def test_save_parameters_appends_npz_suffix(tmp_path):
    model = small_model()
    save_parameters(model, tmp_path / "weights")
    assert (tmp_path / "weights.npz").exists()
    fresh = small_model(seed=5)
    load_parameters(fresh, tmp_path / "weights")
    assert parameters_allclose(model, fresh)
