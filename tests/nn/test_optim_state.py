"""Optimizer state round-trips: restore must continue the exact trajectory."""
import numpy as np
import pytest

from repro.nn import SGD, Adam, MomentumSGD, Parameter, RMSProp, get_optimizer

OPTIMIZERS = {
    "sgd": {},
    "momentum": {"momentum": 0.8},
    "rmsprop": {"decay": 0.95, "epsilon": 1e-7},
    "adam": {"beta1": 0.85, "beta2": 0.98, "epsilon": 1e-9},
}


def make_parameters(rng):
    return [
        Parameter("weight", rng.normal(size=(4, 3))),
        Parameter("bias", rng.normal(size=(3,))),
    ]


def drive(optimizer, parameters, gradients):
    for step_gradients in gradients:
        for parameter, gradient in zip(parameters, step_gradients):
            parameter.grad = gradient.copy()
        optimizer.step()


@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_state_roundtrip_step_after_restore_matches(name):
    """Save mid-run, restore into a fresh optimizer, step: exact equality."""
    rng = np.random.default_rng(3)
    parameters = make_parameters(rng)
    optimizer = get_optimizer(name, parameters, learning_rate=0.02, **OPTIMIZERS[name])
    warmup = [[rng.normal(size=p.shape) for p in parameters] for _ in range(5)]
    drive(optimizer, parameters, warmup)

    state = optimizer.state_dict()
    frozen_values = [p.value.copy() for p in parameters]

    # Continue the original run for three more steps.
    tail = [[rng.normal(size=p.shape) for p in parameters] for _ in range(3)]
    drive(optimizer, parameters, tail)
    expected = [p.value.copy() for p in parameters]

    # Fresh optimizer with different hyper-parameters, restored mid-run.
    restored_parameters = [
        Parameter(p.name, value) for p, value in zip(parameters, frozen_values)
    ]
    restored = get_optimizer(name, restored_parameters, learning_rate=0.5)
    restored.load_state_dict(state)
    assert restored.step_count == 5
    assert restored.learning_rate == pytest.approx(0.02)
    for hyper, value in OPTIMIZERS[name].items():
        assert getattr(restored, hyper) == pytest.approx(value)
    drive(restored, restored_parameters, tail)
    for parameter, value in zip(restored_parameters, expected):
        assert np.array_equal(parameter.value, value)


@pytest.mark.parametrize("name", sorted(OPTIMIZERS))
def test_state_dict_is_a_copy(name):
    rng = np.random.default_rng(1)
    parameters = make_parameters(rng)
    optimizer = get_optimizer(name, parameters, learning_rate=0.01)
    drive(optimizer, parameters, [[rng.normal(size=p.shape) for p in parameters]])
    state = optimizer.state_dict()
    before = {key: np.asarray(value).copy() for key, value in state.items()}
    drive(optimizer, parameters, [[rng.normal(size=p.shape) for p in parameters]])
    for key, value in state.items():
        assert np.array_equal(np.asarray(value), before[key]), key


def test_load_state_dict_rejects_missing_and_extra_entries():
    rng = np.random.default_rng(0)
    adam = Adam(make_parameters(rng), learning_rate=0.01)
    state = adam.state_dict()
    incomplete = dict(state)
    incomplete.pop("slot/first_moment/0")
    with pytest.raises(KeyError, match="first_moment"):
        adam.load_state_dict(incomplete)
    extra = dict(state)
    extra["slot/first_moment/7"] = np.zeros(3)
    with pytest.raises(ValueError, match="unexpected"):
        adam.load_state_dict(extra)


def test_load_state_dict_rejects_wrong_optimizer_kind():
    rng = np.random.default_rng(0)
    momentum = MomentumSGD(make_parameters(rng), learning_rate=0.01)
    rmsprop = RMSProp(make_parameters(rng), learning_rate=0.01)
    with pytest.raises((KeyError, ValueError)):
        rmsprop.load_state_dict(momentum.state_dict())


def test_load_state_dict_rejects_shape_mismatch():
    rng = np.random.default_rng(0)
    adam = Adam(make_parameters(rng), learning_rate=0.01)
    state = adam.state_dict()
    state["slot/first_moment/0"] = np.zeros((2, 2))
    with pytest.raises(ValueError, match="shape mismatch"):
        adam.load_state_dict(state)


def test_sgd_state_is_hyperparameters_only():
    rng = np.random.default_rng(0)
    sgd = SGD(make_parameters(rng), learning_rate=0.1)
    assert set(sgd.state_dict()) == {"step_count", "hyper/learning_rate"}
