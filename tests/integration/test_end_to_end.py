"""Integration tests spanning the full pipeline (scene -> dataset -> training)."""
import numpy as np
import pytest

from repro.dataset import build_sequences, temporal_split
from repro.split import (
    ExperimentConfig,
    ModelConfig,
    MultimodalSplitPredictor,
    RFOnlyPredictor,
    SplitTrainer,
    TrainingConfig,
)


def test_full_pipeline_improves_over_untrained(small_split, tiny_model_config):
    training = TrainingConfig(batch_size=24, max_epochs=8, steps_per_epoch=4, seed=3)
    trainer = SplitTrainer(ExperimentConfig(model=tiny_model_config, training=training))
    history = trainer.fit(small_split.train, small_split.validation)
    first_epoch_rmse = history.records[0].validation_rmse_db
    assert history.best_rmse_db <= first_epoch_rmse
    # The trained predictor should comfortably beat a constant (mean) predictor.
    mean_prediction = np.full(
        len(small_split.validation), small_split.train.targets.mean()
    )
    constant_rmse = float(
        np.sqrt(np.mean((mean_prediction - small_split.validation.targets) ** 2))
    )
    assert history.best_rmse_db < constant_rmse * 1.2


def test_multimodal_and_rf_predictions_are_in_physical_range(
    small_split, tiny_model_config, tiny_training_config
):
    for predictor in (
        MultimodalSplitPredictor(tiny_model_config, tiny_training_config),
        RFOnlyPredictor(tiny_model_config, tiny_training_config),
    ):
        predictor.fit(small_split.train, small_split.validation)
        predictions = predictor.predict(small_split.validation)
        assert np.all(predictions < -5.0)
        assert np.all(predictions > -85.0)


def test_simulated_time_scales_with_payload(small_dataset):
    """More pooling -> smaller payload -> less simulated communication time."""
    sequences = build_sequences(small_dataset)
    split = temporal_split(sequences)
    training = TrainingConfig(batch_size=16, max_epochs=2, steps_per_epoch=2, seed=0)
    base = ModelConfig(
        image_height=12, image_width=12, pooling_height=12, pooling_width=12,
        cnn_channels=(2,), rnn_hidden_size=8,
    )

    one_pixel = MultimodalSplitPredictor(base, training)
    fine = MultimodalSplitPredictor(base.with_pooling(1), training)
    history_one_pixel = one_pixel.fit(split.train, split.validation)
    history_fine = fine.fit(split.train, split.validation)
    # 12x12 images with 1x1 pooling -> 144x the payload; with the paper channel
    # the uplink still decodes but the expected latency is visibly larger, and
    # it can never be *smaller* than the one-pixel configuration.
    assert history_fine.total_elapsed_s >= history_one_pixel.total_elapsed_s - 1e-9


def test_dataset_regeneration_and_training_determinism(small_dataset):
    sequences = build_sequences(small_dataset)
    split = temporal_split(sequences)
    config = ModelConfig(
        image_height=12, image_width=12, pooling_height=12, pooling_width=12,
        cnn_channels=(2,), rnn_hidden_size=8,
    )
    training = TrainingConfig(batch_size=16, max_epochs=2, steps_per_epoch=2, seed=9)
    rmse_values = []
    for _ in range(2):
        predictor = MultimodalSplitPredictor(config, training)
        predictor.fit(split.train, split.validation)
        rmse_values.append(predictor.evaluate(split.validation))
    assert rmse_values[0] == pytest.approx(rmse_values[1])


def test_examples_are_importable_and_have_main():
    """Every example script must at least compile and expose a main()."""
    import ast
    from pathlib import Path

    example_dir = Path(__file__).resolve().parents[2] / "examples"
    scripts = sorted(example_dir.glob("*.py"))
    assert len(scripts) >= 4
    for script in scripts:
        tree = ast.parse(script.read_text())
        function_names = {
            node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)
        }
        assert "main" in function_names, f"{script.name} has no main()"
