"""Test package."""
