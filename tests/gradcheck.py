"""Numerical gradient checking helpers shared by the nn layer tests.

Import :func:`check_layer_gradients` directly, or use the ``gradcheck``
fixture exposed by ``tests/conftest.py`` which binds it together with the
numerical-difference helpers.
"""
from __future__ import annotations

import numpy as np

from repro.nn.losses import MeanSquaredError


def numerical_parameter_gradient(forward_loss, parameter, epsilon: float = 1e-6):
    """Central-difference gradient of ``forward_loss()`` w.r.t. ``parameter``."""
    gradient = np.zeros_like(parameter.value)
    iterator = np.nditer(parameter.value, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = parameter.value[index]
        parameter.value[index] = original + epsilon
        loss_plus = forward_loss()
        parameter.value[index] = original - epsilon
        loss_minus = forward_loss()
        parameter.value[index] = original
        gradient[index] = (loss_plus - loss_minus) / (2.0 * epsilon)
        iterator.iternext()
    return gradient


def numerical_input_gradient(forward_loss_of, inputs, epsilon: float = 1e-6):
    """Central-difference gradient of ``forward_loss_of(inputs)`` w.r.t. inputs."""
    inputs = np.array(inputs, dtype=np.float64)
    gradient = np.zeros_like(inputs)
    iterator = np.nditer(inputs, flags=["multi_index"])
    while not iterator.finished:
        index = iterator.multi_index
        original = inputs[index]
        inputs[index] = original + epsilon
        loss_plus = forward_loss_of(inputs)
        inputs[index] = original - epsilon
        loss_minus = forward_loss_of(inputs)
        inputs[index] = original
        gradient[index] = (loss_plus - loss_minus) / (2.0 * epsilon)
        iterator.iternext()
    return gradient


def check_layer_gradients(layer, inputs, target_shape, rng, atol: float = 1e-6):
    """Assert analytic parameter and input gradients match numerical ones.

    Returns the worst absolute error observed (useful for debugging).
    """
    loss = MeanSquaredError()
    targets = rng.normal(size=target_shape)

    def forward_loss():
        return loss.forward(layer.forward(inputs), targets)

    def forward_loss_of(perturbed):
        return loss.forward(layer.forward(perturbed), targets)

    layer.zero_grad()
    loss.forward(layer.forward(inputs), targets)
    analytic_input_gradient = layer.backward(loss.backward())

    worst = 0.0
    for _, parameter in layer.named_parameters():
        numerical = numerical_parameter_gradient(forward_loss, parameter)
        error = float(np.max(np.abs(numerical - parameter.grad)))
        worst = max(worst, error)
        assert error < atol, f"parameter gradient mismatch ({error})"

    numerical_input = numerical_input_gradient(forward_loss_of, inputs)
    error = float(np.max(np.abs(numerical_input - analytic_input_gradient)))
    worst = max(worst, error)
    assert error < atol, f"input gradient mismatch ({error})"
    return worst
