"""Determinism guarantees: seed -> bit-identical datasets and training runs.

The sweep orchestrator aggregates metrics across seeds and caches datasets by
configuration hash; both are only sound if a seed fully determines the
simulated data and the training trajectory within a process.
"""
import numpy as np
import pytest

from repro.dataset.generator import MmWaveDepthDatasetGenerator
from repro.experiments import ExperimentScale, generate_dataset, prepare_split
from repro.split import ExperimentConfig, SplitTrainer
from repro.utils.seeding import as_generator, spawn_generators


def test_identical_seed_identical_dataset_across_scenarios():
    for scenario in ("paper_baseline", "dense_crowd"):
        scale = ExperimentScale.smoke().with_scenario(scenario).with_seed(13)
        first = MmWaveDepthDatasetGenerator(scale.dataset_config()).generate()
        second = MmWaveDepthDatasetGenerator(scale.dataset_config()).generate()
        assert np.array_equal(first.images, second.images)
        assert np.array_equal(first.powers_dbm, second.powers_dbm)
        assert np.array_equal(
            first.line_of_sight_blocked, second.line_of_sight_blocked
        )


def test_different_scenarios_same_seed_differ():
    scale = ExperimentScale.smoke().with_seed(13)
    baseline = generate_dataset(scale)
    dense = generate_dataset(scale.with_scenario("dense_crowd"))
    assert not np.array_equal(baseline.powers_dbm, dense.powers_dbm)


def test_identical_training_trajectory(smoke_scale, smoke_split, tiny_model_config):
    histories = []
    for _ in range(2):
        trainer = SplitTrainer(
            ExperimentConfig(
                model=tiny_model_config,
                training=smoke_scale.training_config(),
            )
        )
        histories.append(trainer.fit(smoke_split.train, smoke_split.validation))
    first, second = histories
    assert len(first.records) == len(second.records)
    assert np.array_equal(
        first.validation_rmse_curve_db, second.validation_rmse_curve_db
    )
    assert np.array_equal(first.elapsed_times_s, second.elapsed_times_s)
    assert [r.train_loss for r in first.records] == [
        r.train_loss for r in second.records
    ]


def test_prepare_split_is_deterministic(smoke_scale, smoke_dataset):
    first = prepare_split(smoke_scale, smoke_dataset)
    second = prepare_split(smoke_scale, smoke_dataset)
    assert np.array_equal(first.validation.targets, second.validation.targets)
    assert np.array_equal(
        first.train.image_sequences, second.train.image_sequences
    )


# -- spawn_generators stream independence -------------------------------------------


def test_spawn_generators_reproducible():
    first = [g.normal(size=8) for g in spawn_generators(99, 3)]
    second = [g.normal(size=8) for g in spawn_generators(99, 3)]
    for a, b in zip(first, second):
        assert np.array_equal(a, b)


def test_spawn_generators_streams_are_distinct():
    streams = [g.normal(size=256) for g in spawn_generators(0, 4)]
    for i in range(len(streams)):
        for j in range(i + 1, len(streams)):
            assert not np.allclose(streams[i], streams[j])
    # The children also differ from the root generator's own stream.
    root_stream = as_generator(0).normal(size=256)
    for stream in streams:
        assert not np.allclose(stream, root_stream)


def test_spawn_generators_streams_are_uncorrelated():
    a, b = (g.normal(size=20_000) for g in spawn_generators(7, 2))
    correlation = float(np.corrcoef(a, b)[0, 1])
    assert abs(correlation) < 0.03
