"""Golden-value regression tests pinning the simulator's numerical outputs.

These constants were produced by the implementation at the time this test was
written and are trusted as the reference physics.  They exist so that
refactors of :mod:`repro.mmwave`, :mod:`repro.scene`, :mod:`repro.dataset`
and :mod:`repro.channel` cannot *silently* shift the simulated measurements:
any intentional physics change must update the constants here, in a commit
that says so.

Closed-form quantities are pinned tightly (1e-9); RNG-backed traces are pinned
at 1e-7, which numpy's stream-stability guarantees comfortably satisfy while
absorbing last-ulp differences across BLAS builds.

The channel goldens were re-pinned when the ARQ moved from the per-slot retry
loop to O(1) geometric sampling: the slot distributions are statistically
identical, but each payload now consumes exactly one fading draw instead of
one per slot, so seeded slot *sequences* differ from pre-geometric builds.
"""
import numpy as np
import pytest

from repro.channel import ArqSession, PAPER_CHANNEL_PARAMS, WirelessLink
from repro.dataset.generator import generate_small_dataset
from repro.mmwave.propagation import (
    LinkBudget,
    free_space_path_loss_db,
    log_distance_path_loss_db,
    oxygen_absorption_db,
)
from repro.mmwave.power import ReceivedPowerModel
from repro.scene.actors import periodic_crossing_traffic
from repro.scene.environment import CorridorScene

CLOSED_FORM = pytest.approx
RNG_TOL = dict(rel=1e-7, abs=1e-7)


# -- mmwave/propagation.py ----------------------------------------------------------


def test_free_space_path_loss_golden():
    assert float(free_space_path_loss_db(4.0, 60.48e9)) == CLOSED_FORM(
        80.12121869830563, rel=1e-9
    )
    assert float(free_space_path_loss_db(1.0, 60.48e9)) == CLOSED_FORM(
        68.08001887174638, rel=1e-9
    )


def test_log_distance_path_loss_golden():
    assert float(
        log_distance_path_loss_db(4.0, 60.48e9, path_loss_exponent=5.0)
    ) == CLOSED_FORM(98.1830184381445, rel=1e-9)


def test_oxygen_absorption_golden():
    assert float(oxygen_absorption_db(4.0)) == CLOSED_FORM(0.064, rel=1e-9)


def test_line_of_sight_power_golden():
    budget = LinkBudget()
    assert float(budget.line_of_sight_power_dbm(4.0)) == CLOSED_FORM(
        -25.185218698305626, rel=1e-9
    )
    assert float(budget.line_of_sight_power_dbm(8.0)) == CLOSED_FORM(
        -31.26981861158525, rel=1e-9
    )


# -- mmwave/power.py ----------------------------------------------------------------


@pytest.fixture(scope="module")
def periodic_scene():
    scene = CorridorScene(pedestrians=periodic_crossing_traffic(duration_s=6.0))
    frames = list(scene.frames(120))
    return scene, frames


def test_deterministic_power_trace_golden(periodic_scene):
    scene, frames = periodic_scene
    trace = ReceivedPowerModel().power_trace_dbm(scene, frames)
    clear_level = -25.185218698305626
    assert np.allclose(trace[:8], clear_level, rtol=1e-9)
    assert float(trace.min()) == CLOSED_FORM(-43.57963350701127, rel=1e-9)
    assert float(trace.mean()) == CLOSED_FORM(-26.58472015324377, rel=1e-9)
    assert sum(frame.line_of_sight_blocked for frame in frames) == 13


def test_seeded_power_trace_golden(periodic_scene):
    scene, frames = periodic_scene
    model = ReceivedPowerModel.with_default_randomness(seed=2024)
    trace = model.power_trace_dbm(scene, frames)
    expected_head = [
        -24.934561686256234,
        -26.598619312251408,
        -24.71370703631237,
        -25.924802238997405,
        -26.464026063888852,
    ]
    assert trace[:5] == pytest.approx(expected_head, **RNG_TOL)
    assert float(trace.mean()) == pytest.approx(-27.367837998022036, **RNG_TOL)
    assert float(trace.std()) == pytest.approx(4.252968834124445, **RNG_TOL)


# -- channel / ARQ ------------------------------------------------------------------

#: Payload sized for a 50% per-slot uplink success probability under the
#: paper's channel parameters (threshold = mean_snr * ln 2).
GOLDEN_HALF_PROBABILITY_PAYLOAD_BITS = (
    1e-3 * 30e6 * np.log2(1.0 + PAPER_CHANNEL_PARAMS.mean_snr("uplink") * np.log(2.0))
)


def test_geometric_link_slot_sequence_golden():
    link = WirelessLink(params=PAPER_CHANNEL_PARAMS, direction="uplink", seed=123)
    slots = [
        link.transmit(GOLDEN_HALF_PROBABILITY_PAYLOAD_BITS).slots_used
        for _ in range(12)
    ]
    assert slots == [1, 2, 1, 1, 1, 1, 1, 1, 1, 2, 1, 1]


def test_arq_session_exchange_sequence_golden():
    session = ArqSession(params=PAPER_CHANNEL_PARAMS, seed=2024)
    payload = GOLDEN_HALF_PROBABILITY_PAYLOAD_BITS
    steps = [session.exchange(payload, payload) for _ in range(8)]
    assert [step.uplink.slots_used for step in steps] == [5, 1, 2, 1, 3, 1, 1, 2]
    assert [step.downlink.slots_used for step in steps] == [1] * 8
    statistics = session.statistics
    assert statistics.mean_slots_per_step == CLOSED_FORM(3.0, rel=1e-9)
    assert statistics.mean_step_latency_s == CLOSED_FORM(0.003, rel=1e-9)
    assert statistics.slots_std == pytest.approx(1.3228756555322951, **RNG_TOL)


# -- dataset generation -------------------------------------------------------------

#: Depth image of the first frame with a blocked line of sight in the golden
#: dataset (a pedestrian column in front of the corridor-wall background).
GOLDEN_BLOCKED_FRAME = np.array(
    [
        [1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0],
        [0.74578697, 1.0, 0.22481184, 0.22013095, 1.0, 1.0, 1.0, 0.74578697],
        [0.72314326, 0.79370087, 0.21537238, 0.21053213, 0.75155096, 0.76583808, 0.79370087, 0.72314326],
        [0.71157439, 0.77988412, 0.21053213, 0.20560586, 0.7370099, 0.75155096, 0.77988412, 0.71157439],
        [0.71157439, 0.77988412, 0.21053213, 0.20560586, 0.7370099, 0.75155096, 0.77988412, 0.71157439],
        [1.0, 1.0, 0.21537238, 0.21053213, 1.0, 1.0, 1.0, 1.0],
        [1.0, 1.0, 0.22481184, 0.22013095, 1.0, 1.0, 1.0, 1.0],
        [1.0, 1.0, 0.23842391, 0.23395504, 1.0, 1.0, 1.0, 1.0],
    ]
)


@pytest.fixture(scope="module")
def golden_dataset():
    return generate_small_dataset(
        num_samples=160, image_size=8, seed=7, mean_interarrival_s=0.8
    )


def test_generated_dataset_golden_statistics(golden_dataset):
    dataset = golden_dataset
    assert float(dataset.images.mean()) == pytest.approx(0.7086276204560822, **RNG_TOL)
    expected_head = [
        -25.7070714926494,
        -24.755432942641768,
        -25.88273963640473,
        -26.23044211079693,
        -27.731575320138877,
        -29.275174805146307,
    ]
    assert dataset.powers_dbm[:6] == pytest.approx(expected_head, **RNG_TOL)
    assert float(dataset.powers_dbm.mean()) == pytest.approx(
        -30.849431530805468, **RNG_TOL
    )
    assert float(dataset.powers_dbm.min()) == pytest.approx(
        -56.13468425676041, **RNG_TOL
    )
    assert int(dataset.line_of_sight_blocked.sum()) == 46


def test_generated_dataset_golden_frame(golden_dataset):
    dataset = golden_dataset
    first_blocked = int(np.flatnonzero(dataset.line_of_sight_blocked)[0])
    assert first_blocked == 93
    assert dataset.images[first_blocked] == pytest.approx(
        GOLDEN_BLOCKED_FRAME, abs=1e-7
    )
    assert float(dataset.powers_dbm[first_blocked]) == pytest.approx(
        -27.98495582559403, **RNG_TOL
    )
