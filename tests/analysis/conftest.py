"""Shared fixtures for the static-analysis tests."""
import textwrap

import pytest

from repro.analysis import analyze_paths


@pytest.fixture
def lint(tmp_path):
    """Lint one dedented snippet; returns the list of finding codes.

    The snippet lands in a neutral filename (no ``test_`` prefix, no module
    the rules exempt), with the runtime contract pass off — fixture snippets
    exercise the AST rules only.
    """

    def run(snippet: str, filename: str = "snippet.py"):
        path = tmp_path / filename
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(snippet))
        report = analyze_paths([path], contract="off")
        return [finding.code for finding in report.findings]

    return run
