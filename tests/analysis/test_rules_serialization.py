"""Fixture-snippet tests for the serialization-discipline rules."""


def test_ser001_flags_direct_savez(lint):
    assert "SER001" in lint(
        """
        import numpy as np

        def persist(path, array):
            np.savez(path, array=array)
        """
    )


def test_ser001_flags_savez_compressed(lint):
    assert "SER001" in lint(
        """
        import numpy as np

        def persist(path, array):
            np.savez_compressed(path, array=array)
        """
    )


def test_ser001_negative_for_atomic_helper(lint):
    assert "SER001" not in lint(
        """
        from repro.nn.serialization import atomic_savez

        def persist(path, array):
            atomic_savez(path, {"array": array})
        """
    )


def test_ser001_suppressed(lint):
    codes = lint(
        """
        import numpy as np

        def persist(path, array):
            np.savez(path, array=array)  # repro: noqa[SER001] -- fixture
        """
    )
    assert "SER001" not in codes and "NOQ001" not in codes


def test_ser002_flags_json_dump(lint):
    assert "SER002" in lint(
        """
        import json

        def persist(handle, payload):
            json.dump(payload, handle)
        """
    )


def test_ser002_negative_for_json_dumps(lint):
    assert "SER002" not in lint(
        """
        import json

        def render(payload):
            return json.dumps(payload, sort_keys=True)
        """
    )


def test_ser003_flags_write_mode_open(lint):
    assert "SER003" in lint(
        """
        def persist(path, text):
            with open(path, "w") as handle:
                handle.write(text)
        """
    )


def test_ser003_flags_append_and_keyword_modes(lint):
    assert "SER003" in lint('HANDLE = open("log.txt", mode="a")\n')
    assert "SER003" in lint('HANDLE = open("log.bin", "wb")\n')


def test_ser003_flags_path_write_text(lint):
    assert "SER003" in lint(
        """
        from pathlib import Path

        def persist(path, text):
            Path(path).write_text(text)
        """
    )


def test_ser003_negative_for_reads(lint):
    codes = lint(
        """
        from pathlib import Path

        def load(path):
            with open(path) as handle:
                first = handle.read()
            return first + Path(path).read_text()
        """
    )
    assert "SER003" not in codes


def test_ser003_suppressed(lint):
    codes = lint(
        """
        def persist(path, text):
            with open(path, "w") as handle:  # repro: noqa[SER003] -- fixture
                handle.write(text)
        """
    )
    assert "SER003" not in codes and "NOQ001" not in codes
