"""Checkpoint-contract rules: AST pairing + runtime introspection pass."""
import numpy as np

from repro.analysis.contract import (
    ContractSpec,
    check_spec,
    default_specs,
    run_contract_checks,
)


def test_ckp001_flags_capture_without_restore(lint):
    assert "CKP001" in lint(
        """
        class Stateful:
            def state_dict(self):
                return {}
        """
    )


def test_ckp002_flags_restore_without_capture(lint):
    assert "CKP002" in lint(
        """
        class Stateful:
            def load_state_dict(self, state):
                pass
        """
    )


def test_paired_class_is_clean(lint):
    codes = lint(
        """
        class Stateful:
            def state_dict(self):
                return {}

            def load_state_dict(self, state):
                pass
        """
    )
    assert "CKP001" not in codes and "CKP002" not in codes


def test_from_state_counts_as_restore(lint):
    assert "CKP001" not in lint(
        """
        class Record:
            def state_dict(self):
                return {}

            @classmethod
            def from_state(cls, state):
                return cls()
        """
    )


def test_ckp001_suppressed(lint):
    codes = lint(
        """
        class Stateful:  # repro: noqa[CKP001] -- fixture
            def state_dict(self):
                return {}
        """
    )
    assert "CKP001" not in codes and "NOQ001" not in codes


# -- runtime contract introspection ---------------------------------------------------


class _OmitsBuffer:
    """Deliberately broken: ``buffer`` is run state but never captured."""

    def __init__(self):
        self.buffer = np.zeros(3)
        self.step = 0  # immutable value: ignored by the pass

    def state_dict(self):
        return {"step": self.step}

    def load_state_dict(self, state):
        self.step = int(state["step"])


class _CapturesBuffer(_OmitsBuffer):
    def state_dict(self):
        return {"step": self.step, "buffer": self.buffer.copy()}


def test_contract_pass_catches_deliberately_omitted_state_key():
    findings = check_spec(ContractSpec(name="Omits", factory=_OmitsBuffer))
    assert [finding.code for finding in findings] == ["CKP003"]
    assert "'buffer'" in findings[0].message
    assert findings[0].line > 0


def test_contract_pass_accepts_captured_attribute():
    assert check_spec(ContractSpec(name="Captures", factory=_CapturesBuffer)) == []


def test_contract_pass_accepts_waived_attribute():
    spec = ContractSpec(
        name="Waived",
        factory=_OmitsBuffer,
        waived={"buffer": "transient fixture buffer"},
    )
    assert check_spec(spec) == []


def test_contract_pass_reports_stale_waiver():
    spec = ContractSpec(
        name="Stale",
        factory=_CapturesBuffer,
        waived={"ghost": "never existed"},
    )
    findings = check_spec(spec)
    assert [finding.code for finding in findings] == ["CKP004"]


def test_contract_pass_accepts_aliased_attribute():
    class AliasedName:
        def __init__(self):
            self._rng_state = np.zeros(2)

        def state_dict(self):
            return {"generator": self._rng_state.copy()}

        def load_state_dict(self, state):
            self._rng_state = np.asarray(state["generator"])

    spec = ContractSpec(
        name="Aliased",
        factory=AliasedName,
        aliases={"_rng_state": "generator"},
    )
    assert check_spec(spec) == []


def test_contract_pass_reports_broken_factory_as_finding():
    def explode():
        raise RuntimeError("boom")

    findings = check_spec(ContractSpec(name="Broken", factory=explode))
    assert [finding.code for finding in findings] == ["CKP005"]
    assert "boom" in findings[0].message


def test_underscore_and_separator_matching():
    class SlotOwner:
        def __init__(self):
            self._velocity = [np.zeros(2)]

        def state_dict(self):
            return {"slot/velocity/0": self._velocity[0].copy()}

        def load_state_dict(self, state):
            self._velocity[0][...] = state["slot/velocity/0"]

    assert check_spec(ContractSpec(name="Slots", factory=SlotOwner)) == []


def test_shipped_default_specs_are_clean():
    findings, checked = run_contract_checks()
    assert findings == []
    assert checked == len(default_specs()) >= 10
