"""The suite must pass over its own codebase (standing CI gate)."""
from pathlib import Path

import repro
from repro.analysis import analyze_paths


def test_shipped_tree_is_clean_under_full_suite():
    package_root = Path(repro.__file__).parent
    report = analyze_paths([package_root], contract="on")
    rendered = "\n".join(finding.render() for finding in report.findings)
    assert report.findings == [], f"self-lint regressions:\n{rendered}"
    assert report.exit_code() == 0
    assert report.files_scanned > 50
    assert report.contract_specs_checked >= 10
