"""Fixture-snippet tests for the hygiene rules."""


def test_hyg001_flags_float_equality(lint):
    assert "HYG001" in lint(
        """
        def converged(loss):
            return loss == 0.001
        """
    )


def test_hyg001_flags_negated_float_literal(lint):
    assert "HYG001" in lint(
        """
        def at_floor(power_dbm):
            return power_dbm != -120.0
        """
    )


def test_hyg001_negative_for_ordering_and_int_compare(lint):
    codes = lint(
        """
        def classify(x, n):
            return x <= 0.5 or n == 3
        """
    )
    assert "HYG001" not in codes


def test_hyg001_exempt_in_test_files(lint):
    snippet = """
    def check(value):
        assert value == 0.25
    """
    assert "HYG001" in lint(snippet, filename="golden.py")
    assert "HYG001" not in lint(snippet, filename="test_golden.py")


def test_hyg001_suppressed(lint):
    codes = lint(
        """
        def is_unit(p):
            return p == 1.0  # repro: noqa[HYG001] -- exact short-circuit
        """
    )
    assert "HYG001" not in codes and "NOQ001" not in codes


def test_hyg002_flags_mutable_defaults(lint):
    assert "HYG002" in lint("def f(items=[]):\n    return items\n")
    assert "HYG002" in lint("def f(table={}):\n    return table\n")
    assert "HYG002" in lint("def f(seen=set()):\n    return seen\n")
    assert "HYG002" in lint("def f(*, acc=list()):\n    return acc\n")


def test_hyg002_negative_for_none_and_immutable_defaults(lint):
    codes = lint(
        """
        def f(items=None, limit=32, label="x", pair=(1, 2)):
            return items or []
        """
    )
    assert "HYG002" not in codes


def test_hyg002_suppressed(lint):
    codes = lint(
        """
        def f(items=[]):  # repro: noqa[HYG002] -- fixture
            return items
        """
    )
    assert "HYG002" not in codes and "NOQ001" not in codes
