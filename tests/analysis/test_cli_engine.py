"""Engine + CLI behavior: fixture-tree acceptance, exit codes, JSON schema."""
import json
import textwrap
from pathlib import Path

import pytest

from repro.analysis import analyze_paths, discover_files
from repro.analysis.cli import main
from repro.analysis.registry import all_rules

#: One deliberate violation per rule code (plus the engine codes), as the
#: acceptance criterion demands: the suite must flag every one of these.
VIOLATIONS = {
    "RNG001": "import numpy as np\nX = np.random.normal(0.0, 1.0)\n",
    "RNG002": "import numpy as np\nRNG = np.random.default_rng()\n",
    "RNG003": "import numpy as np\nRNG = np.random.default_rng(1234)\n",
    "RNG004": "import random\nX = random.random()\n",
    "RNG005": (
        "import time\n"
        "import numpy as np\n"
        "RNG = np.random.default_rng(time.time_ns())\n"
    ),
    "CKP001": "class A:\n    def state_dict(self):\n        return {}\n",
    "CKP002": "class B:\n    def load_state_dict(self, state):\n        pass\n",
    "SER001": "import numpy as np\nnp.savez('x.npz', a=[1])\n",
    "SER002": "import json\njson.dump({}, None)\n",
    "SER003": "HANDLE = open('x.txt', 'w')\n",
    "HYG001": "def f(x):\n    return x == 1.5\n",
    "HYG002": "def f(items=[]):\n    return items\n",
    "NOQ001": "X = 1  # repro: noqa[RNG001] -- nothing to suppress here\n",
    "NOQ002": "X = 1  # repro: noqa[RNG001\n",
    "AST001": "def broken(:\n",
}


@pytest.fixture
def violation_tree(tmp_path):
    root = tmp_path / "fixture_tree"
    root.mkdir()
    for code, source in VIOLATIONS.items():
        (root / f"case_{code.lower()}.py").write_text(source)
    return root


def test_fixture_tree_trips_every_rule(violation_tree):
    report = analyze_paths([violation_tree], contract="off")
    found = {finding.code for finding in report.findings}
    assert set(VIOLATIONS) <= found
    assert report.exit_code() == 1


def test_cli_exits_nonzero_on_fixture_tree(violation_tree, capsys):
    assert main([str(violation_tree)]) == 1
    out = capsys.readouterr().out
    for code in VIOLATIONS:
        assert code in out


def test_cli_json_report_schema(violation_tree, capsys):
    assert main([str(violation_tree), "--format", "json"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert payload["version"] == 1
    assert payload["files_scanned"] == len(VIOLATIONS)
    findings = payload["findings"]
    assert findings == sorted(
        findings, key=lambda f: (f["path"], f["line"], f["column"], f["code"])
    )
    assert {"path", "line", "column", "code", "message"} <= set(findings[0])


def test_cli_select_filters_codes(violation_tree, capsys):
    assert main([str(violation_tree), "--format", "json", "--select", "RNG001"]) == 1
    payload = json.loads(capsys.readouterr().out)
    assert {finding["code"] for finding in payload["findings"]} == {"RNG001"}


def test_cli_rejects_unknown_select_code(capsys):
    assert main(["src", "--select", "ZZZ999"]) == 2


def test_cli_requires_paths(capsys):
    assert main([]) == 2


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    assert main([str(tmp_path / "does-not-exist")]) == 2


def test_cli_list_rules_table(capsys):
    assert main(["--list-rules"]) == 0
    out = capsys.readouterr().out
    for rule in all_rules():
        assert rule.code in out
    assert "NOQ001" in out and "CKP003" in out


def test_clean_tree_exits_zero(tmp_path, capsys):
    (tmp_path / "clean.py").write_text("def double(x):\n    return 2 * x\n")
    assert main([str(tmp_path)]) == 0
    assert "clean" in capsys.readouterr().out


def test_discover_files_deduplicates_and_sorts(tmp_path):
    (tmp_path / "b.py").write_text("B = 2\n")
    (tmp_path / "a.py").write_text("A = 1\n")
    files = discover_files([tmp_path, tmp_path / "a.py"])
    assert [path.name for path in files] == ["a.py", "b.py"]


def test_discover_files_raises_on_missing_path(tmp_path):
    with pytest.raises(FileNotFoundError):
        discover_files([tmp_path / "missing"])


def test_one_violation_per_rule_inventory_is_complete():
    """Every registered rule code has a fixture violation above."""
    assert {rule.code for rule in all_rules()} <= set(VIOLATIONS)


def test_suppressed_fixture_tree_is_clean(tmp_path):
    source = textwrap.dedent(
        """
        import numpy as np

        RNG = np.random.default_rng()  # repro: noqa[RNG002] -- fixture hatch
        """
    )
    path = tmp_path / "suppressed.py"
    path.write_text(source)
    report = analyze_paths([path], contract="off")
    assert report.findings == []


def test_report_paths_are_stable_strings(violation_tree):
    report = analyze_paths([violation_tree], contract="off")
    for finding in report.findings:
        assert Path(finding.path).name.startswith("case_")
