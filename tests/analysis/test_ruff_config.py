"""Ruff configuration stays pinned and in lockstep with CI.

Ruff itself is not a runtime dependency of the repo and may be absent in the
local environment; the actual `ruff check` run is exercised only when the
binary is available (always true in the CI lint job, which installs the pin).
"""
import re
import shutil
import subprocess
import tomllib
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[2]


def _ruff_config():
    with open(REPO_ROOT / "pyproject.toml", "rb") as handle:
        return tomllib.load(handle)["tool"]["ruff"]


def test_ruff_pin_matches_ci_workflow():
    pinned = _ruff_config()["required-version"]
    assert re.fullmatch(r"\d+\.\d+\.\d+", pinned)
    workflow = (REPO_ROOT / ".github" / "workflows" / "ci.yml").read_text()
    assert f"ruff=={pinned}" in workflow


def test_ruff_scope_covers_sources_and_tests():
    config = _ruff_config()
    include = " ".join(config["include"])
    for tree in ("src/", "tests/", "benchmarks/"):
        assert tree in include
    assert config["lint"]["select"] == ["E4", "E7", "E9", "F"]


def test_ruff_check_passes_when_available():
    ruff = shutil.which("ruff")
    if ruff is None:
        pytest.skip("ruff binary not installed in this environment")
    result = subprocess.run(
        [ruff, "check", "src", "tests", "benchmarks"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
