"""Fixture-snippet tests for the RNG-discipline rules (positive / negative /
suppressed, per code)."""


def test_rng001_flags_legacy_module_level_draw(lint):
    assert "RNG001" in lint(
        """
        import numpy as np

        def sample():
            return np.random.normal(0.0, 1.0, size=8)
        """
    )


def test_rng001_flags_from_import_spelling(lint):
    assert "RNG001" in lint(
        """
        from numpy.random import randint

        def roll():
            return randint(6)
        """
    )


def test_rng001_ignores_generator_methods(lint):
    assert "RNG001" not in lint(
        """
        def sample(rng):
            return rng.normal(0.0, 1.0, size=8)
        """
    )


def test_rng001_suppressed(lint):
    codes = lint(
        """
        import numpy as np

        def sample():
            return np.random.normal(0.0, 1.0)  # repro: noqa[RNG001] -- fixture
        """
    )
    assert "RNG001" not in codes and "NOQ001" not in codes


def test_rng002_flags_unseeded_default_rng(lint):
    assert "RNG002" in lint(
        """
        import numpy as np

        RNG = np.random.default_rng()
        """
    )


def test_rng002_flags_explicit_none_seed(lint):
    assert "RNG002" in lint(
        """
        import numpy as np

        RNG = np.random.default_rng(None)
        """
    )


def test_rng002_negative_when_seeded(lint):
    assert "RNG002" not in lint(
        """
        import numpy as np

        RNG = np.random.default_rng(1234)
        """
    )


def test_rng002_suppressed(lint):
    codes = lint(
        """
        import numpy as np

        RNG = np.random.default_rng()  # repro: noqa[RNG002] -- escape hatch
        """
    )
    assert "RNG002" not in codes and "NOQ001" not in codes
    # The seeded-construction rule still applies independently of RNG002?
    # No: an unseeded call is RNG002's finding alone.
    assert "RNG003" not in codes


def test_rng003_flags_adhoc_seeded_generator(lint):
    assert "RNG003" in lint(
        """
        import numpy as np

        def build():
            return np.random.default_rng(1234)
        """
    )


def test_rng003_flags_adhoc_seed_sequence(lint):
    assert "RNG003" in lint(
        """
        import numpy as np

        def build(seed):
            return np.random.SeedSequence(seed)
        """
    )


def test_rng003_allows_registered_salt_sites(lint):
    assert "RNG003" not in lint(
        """
        import numpy as np

        PLACEMENT_SEED_SALT = 0x9E3779B9

        def build(seed):
            return np.random.default_rng(
                np.random.SeedSequence([int(seed), PLACEMENT_SEED_SALT])
            )
        """
    )


def test_rng003_suppressed(lint):
    codes = lint(
        """
        import numpy as np

        def build():
            return np.random.default_rng(7)  # repro: noqa[RNG003] -- fixture
        """
    )
    assert "RNG003" not in codes and "NOQ001" not in codes


def test_rng004_flags_stdlib_random_import(lint):
    assert "RNG004" in lint("import random\n")
    assert "RNG004" in lint("from random import choice\n")


def test_rng004_negative_for_other_modules(lint):
    assert "RNG004" not in lint("import math\nfrom os import path\n")


def test_rng004_suppressed(lint):
    codes = lint("import random  # repro: noqa[RNG004] -- fixture\n")
    assert "RNG004" not in codes and "NOQ001" not in codes


def test_rng005_flags_time_seeded_generator(lint):
    assert "RNG005" in lint(
        """
        import time

        import numpy as np

        def build():
            return np.random.default_rng(int(time.time()))
        """
    )


def test_rng005_negative_for_timing_measurements(lint):
    assert "RNG005" not in lint(
        """
        import time

        def measure():
            start = time.perf_counter()
            return time.perf_counter() - start
        """
    )


def test_rng005_suppressed(lint):
    codes = lint(
        """
        import time

        import numpy as np

        def build():
            return np.random.default_rng(time.time_ns())  # repro: noqa[RNG005]
        """
    )
    assert "RNG005" not in codes and "NOQ001" not in codes
