"""Suppression parser: grammar, use tracking, Hypothesis round trips."""
import string

from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.findings import Finding
from repro.analysis.suppressions import SuppressionIndex, parse_suppression_comment


def test_bare_noqa_suppresses_all_codes():
    suppression, error = parse_suppression_comment("# repro: noqa", line=3)
    assert error is None
    assert suppression.codes is None
    assert suppression.matches("RNG001") and suppression.matches("HYG002")


def test_coded_noqa_parses_codes_and_reason():
    comment = "# repro: noqa[RNG002, HYG001] -- exact guard, see PR 7"
    suppression, error = parse_suppression_comment(comment, line=1)
    assert error is None
    assert suppression.codes == ("RNG002", "HYG001")
    assert suppression.reason == "exact guard, see PR 7"
    assert suppression.matches("RNG002")
    assert not suppression.matches("SER001")


def test_non_suppression_comment_is_ignored():
    for comment in ("# plain comment", "# noqa: F401", "# repro is great"):
        suppression, error = parse_suppression_comment(comment, line=1)
        assert suppression is None and error is None


def test_empty_brackets_are_malformed():
    suppression, error = parse_suppression_comment("# repro: noqa[]", line=1)
    assert suppression is None
    assert "empty suppression" in error


def test_bad_code_is_malformed():
    suppression, error = parse_suppression_comment("# repro: noqa[RNG1]", line=1)
    assert suppression is None
    assert "malformed suppression codes" in error


def test_trailing_garbage_is_malformed():
    comment = "# repro: noqa[RNG001] because reasons"
    suppression, error = parse_suppression_comment(comment, line=1)
    assert suppression is None
    assert "unparseable" in error


def test_marker_inside_string_literal_is_not_a_suppression():
    source = 'MESSAGE = "# repro: noqa[RNG001]"\n'
    index = SuppressionIndex.from_source("m.py", source)
    assert index.by_line == {} and index.errors == []


def _finding(line, code="RNG001"):
    return Finding(path="m.py", line=line, column=0, code=code, message="x")


def test_filter_marks_suppressions_used_and_reports_unused():
    source = (
        "a = 1  # repro: noqa[RNG001]\n"
        "b = 2  # repro: noqa[SER001]\n"
    )
    index = SuppressionIndex.from_source("m.py", source)
    kept = index.filter([_finding(1), _finding(2)])
    # Line 1 suppressed; line 2's suppression names the wrong code.
    assert [finding.line for finding in kept] == [2]
    unused = index.unused()
    assert [finding.line for finding in unused] == [2]
    assert unused[0].code == "NOQ001"


def test_engine_codes_cannot_be_suppressed():
    source = "a = 1  # repro: noqa\n"
    index = SuppressionIndex.from_source("m.py", source)
    kept = index.filter([_finding(1, "NOQ002")])
    assert [finding.code for finding in kept] == ["NOQ002"]


CODES = st.from_regex(r"[A-Z]{3}[0-9]{3}", fullmatch=True)
REASONS = st.text(
    alphabet=string.ascii_letters + string.digits + " _.,;:!?/()'",
    min_size=1,
    max_size=40,
).filter(lambda text: text.strip() == text and text)


@given(
    codes=st.lists(CODES, min_size=1, max_size=5, unique=True),
    reason=st.none() | REASONS,
    pad=st.sampled_from(["", " ", "  "]),
)
def test_parser_round_trips_generated_comments(codes, reason, pad):
    comment = f"#{pad}repro:{pad}noqa[{(',' + pad).join(codes)}]"
    if reason is not None:
        comment += f"{pad}--{pad}{reason}"
    suppression, error = parse_suppression_comment(comment, line=7)
    assert error is None
    assert suppression.codes == tuple(codes)
    assert suppression.reason == reason
    assert suppression.line == 7
    for code in codes:
        assert suppression.matches(code)


@given(codes=st.lists(CODES, min_size=1, max_size=4, unique=True), data=st.data())
def test_parser_matches_exactly_the_listed_codes(codes, data):
    other = data.draw(CODES.filter(lambda code: code not in codes))
    suppression, _ = parse_suppression_comment(
        f"# repro: noqa[{','.join(codes)}]", line=1
    )
    assert not suppression.matches(other)
