"""Tests for the shared-medium schedulers."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fleet import (
    ProportionalScheduler,
    RoundRobinScheduler,
    scheduler_from_name,
)


def reference_completions(slots, quanta):
    """Slot-by-slot reference simulation of cyclic weighted service."""
    remaining = list(slots)
    completions = [0] * len(slots)
    clock = 0
    while any(remaining):
        for index, quantum in enumerate(quanta):
            if remaining[index] <= 0:
                continue
            burst = min(quantum, remaining[index])
            clock += burst
            remaining[index] -= burst
            if remaining[index] == 0:
                completions[index] = clock
    return completions


# -- round-robin ---------------------------------------------------------------------


def test_round_robin_single_demand_is_identity():
    result = RoundRobinScheduler().schedule([7])
    assert result.total_slots == 7
    assert result.completion_slots.tolist() == [7]


def test_round_robin_matches_reference_simulation():
    rng = np.random.default_rng(0)
    scheduler = RoundRobinScheduler()
    for _ in range(50):
        count = int(rng.integers(1, 8))
        slots = rng.integers(1, 30, size=count).tolist()
        result = scheduler.schedule(slots)
        expected = reference_completions(slots, [1] * count)
        assert result.completion_slots.tolist() == expected
        assert result.total_slots == sum(slots)


def test_round_robin_work_conserving():
    result = RoundRobinScheduler().schedule([5, 3, 9, 1])
    # The last demand to finish completes exactly when the medium goes idle.
    assert result.completion_slots.max() == result.total_slots == 18


def test_round_robin_small_demands_finish_early():
    result = RoundRobinScheduler().schedule([100, 1])
    # Demand 1 only waits for demand 0's first slot.
    assert result.completion_slots[1] == 2
    assert result.completion_slots[0] == 101


def test_round_robin_large_demands_no_slot_loop():
    # Completion math is closed-form per demand: huge demands must be instant.
    result = RoundRobinScheduler().schedule([10**12, 3])
    assert result.completion_slots[1] == 6  # 3 cycles of 2 slots
    assert result.completion_slots[0] == 10**12 + 3


def test_empty_and_invalid_demands():
    result = RoundRobinScheduler().schedule([])
    assert result.total_slots == 0
    assert len(result.completion_slots) == 0
    with pytest.raises(ValueError):
        RoundRobinScheduler().schedule([3, 0])


def test_schedule_result_time_conversions():
    result = RoundRobinScheduler().schedule([2, 2])
    assert result.busy_time_s(1e-3) == pytest.approx(4e-3)
    assert result.completion_times_s(1e-3).tolist() == pytest.approx([3e-3, 4e-3])


# -- proportional --------------------------------------------------------------------


def test_proportional_equal_payloads_degenerates_to_round_robin():
    slots = [5, 3, 9, 1]
    equal_bits = [1000.0] * 4
    round_robin = RoundRobinScheduler().schedule(slots)
    proportional = ProportionalScheduler().schedule(slots, payload_bits=equal_bits)
    assert (
        proportional.completion_slots.tolist()
        == round_robin.completion_slots.tolist()
    )


def test_proportional_matches_reference_simulation():
    rng = np.random.default_rng(1)
    scheduler = ProportionalScheduler()
    for _ in range(50):
        count = int(rng.integers(1, 6))
        slots = rng.integers(1, 30, size=count).tolist()
        bits = (rng.integers(1, 5, size=count) * 1000.0).tolist()
        result = scheduler.schedule(slots, payload_bits=bits)
        quanta = np.minimum(
            np.maximum(1, np.round(np.array(bits) / min(bits))).astype(int),
            scheduler.max_quantum,
        )
        expected = reference_completions(slots, quanta.tolist())
        assert result.completion_slots.tolist() == expected
        assert result.total_slots == sum(slots)


def test_proportional_heavy_payload_gets_bursts():
    # UE 0 has a 3x payload: it transmits 3 slots per turn instead of 1, so
    # its completion is earlier than under plain round-robin.
    slots = [30, 10]
    proportional = ProportionalScheduler().schedule(
        slots, payload_bits=[3000.0, 1000.0]
    )
    round_robin = RoundRobinScheduler().schedule(slots)
    assert proportional.completion_slots[0] < round_robin.completion_slots[0]
    assert proportional.total_slots == round_robin.total_slots == 40


def test_proportional_quantum_is_capped():
    # A 1000x payload ratio (float32 UE next to a top-k UE) must not produce
    # thousand-slot bursts: the quantum saturates at max_quantum.
    slots = [200, 2]
    bits = [1_000_000.0, 1000.0]
    capped = ProportionalScheduler().schedule(slots, payload_bits=bits)
    expected = reference_completions(
        slots, [ProportionalScheduler.DEFAULT_MAX_QUANTUM, 1]
    )
    assert capped.completion_slots.tolist() == expected
    # The small-payload UE is served once per capped cycle instead of waiting
    # behind the heavy UE's entire demand in one uncapped burst.
    uncapped = ProportionalScheduler(max_quantum=10**9).schedule(
        slots, payload_bits=bits
    )
    assert capped.completion_slots[1] < uncapped.completion_slots[1]
    assert uncapped.completion_slots[1] == sum(slots)


def test_proportional_cap_preserves_work_conservation():
    rng = np.random.default_rng(7)
    for max_quantum in (1, 4, 64):
        scheduler = ProportionalScheduler(max_quantum=max_quantum)
        for _ in range(20):
            count = int(rng.integers(1, 6))
            slots = rng.integers(1, 40, size=count).tolist()
            # Payload ratios well beyond the cap, so it always binds.
            bits = (rng.integers(1, 4, size=count) * 1e6 + 1000.0).tolist()
            result = scheduler.schedule(slots, payload_bits=bits)
            quanta = np.minimum(
                np.maximum(1, np.round(np.array(bits) / min(bits))).astype(int),
                max_quantum,
            )
            expected = reference_completions(slots, quanta.tolist())
            assert result.completion_slots.tolist() == expected
            # Work conservation: the medium never idles, so the last finisher
            # completes exactly when the total demand is drained.
            assert result.completion_slots.max() == result.total_slots == sum(slots)


def test_proportional_cap_of_one_is_round_robin():
    slots = [30, 10, 5]
    bits = [9000.0, 3000.0, 1000.0]
    capped = ProportionalScheduler(max_quantum=1).schedule(slots, payload_bits=bits)
    round_robin = RoundRobinScheduler().schedule(slots)
    assert capped.completion_slots.tolist() == round_robin.completion_slots.tolist()


def test_proportional_invalid_cap():
    with pytest.raises(ValueError):
        ProportionalScheduler(max_quantum=0)


def test_proportional_payload_validation():
    with pytest.raises(ValueError):
        ProportionalScheduler().schedule([3, 3], payload_bits=[1.0])
    with pytest.raises(ValueError):
        ProportionalScheduler().schedule([3, 3], payload_bits=[1.0, -1.0])


# -- registry ------------------------------------------------------------------------


def test_scheduler_from_name():
    assert isinstance(scheduler_from_name("round_robin"), RoundRobinScheduler)
    assert isinstance(scheduler_from_name("proportional"), ProportionalScheduler)
    with pytest.raises(ValueError):
        scheduler_from_name("fifo")


# -- O(N log N) completions vs. the retained O(N^2) oracle ---------------------------


def _completion_pair(slots, quanta):
    from repro.fleet.scheduler import (
        _weighted_round_robin_completions,
        _weighted_round_robin_completions_reference,
    )

    slots = np.asarray(slots, dtype=np.int64)
    quanta = np.asarray(quanta, dtype=np.int64)
    return (
        _weighted_round_robin_completions(slots, quanta),
        _weighted_round_robin_completions_reference(slots, quanta),
    )


def test_fast_completions_match_oracle_and_simulation():
    rng = np.random.default_rng(7)
    for _ in range(100):
        count = int(rng.integers(1, 12))
        slots = rng.integers(1, 40, size=count)
        quanta = rng.integers(1, 12, size=count)
        fast, oracle = _completion_pair(slots, quanta)
        assert fast.tolist() == oracle.tolist()
        assert oracle.tolist() == reference_completions(
            slots.tolist(), quanta.tolist()
        )


def test_fast_completions_match_oracle_at_scale():
    rng = np.random.default_rng(11)
    slots = rng.integers(1, 10**6, size=1000)
    quanta = rng.integers(1, 64, size=1000)
    fast, oracle = _completion_pair(slots, quanta)
    assert fast.tolist() == oracle.tolist()


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=10**6),
            st.integers(min_value=1, max_value=128),
        ),
        min_size=1,
        max_size=40,
    )
)
@settings(max_examples=200, deadline=None)
def test_fast_completions_match_oracle_property(demands):
    slots = [demand[0] for demand in demands]
    quanta = [demand[1] for demand in demands]
    fast, oracle = _completion_pair(slots, quanta)
    assert fast.tolist() == oracle.tolist()


@given(
    st.lists(st.integers(min_value=1, max_value=10**4), min_size=1, max_size=20),
    st.integers(min_value=10**4, max_value=10**6),
)
@settings(max_examples=60, deadline=None)
def test_fast_completions_quanta_above_demand(slots, big_quantum):
    # Quanta caps larger than any demand: every demand finishes in cycle 1,
    # so completions degenerate to plain prefix sums in demand order.
    quanta = [big_quantum] * len(slots)
    fast, oracle = _completion_pair(slots, quanta)
    assert fast.tolist() == oracle.tolist()
    assert fast.tolist() == np.cumsum(slots).tolist()


def test_fast_completions_single_demand_and_ties():
    for slots, quanta in (
        ([1], [1]),
        ([64], [7]),
        ([5, 5, 5], [2, 2, 2]),
        ([10**12, 3], [1, 1]),
        ([3, 3, 3, 3], [4, 4, 4, 4]),
    ):
        fast, oracle = _completion_pair(slots, quanta)
        assert fast.tolist() == oracle.tolist()
