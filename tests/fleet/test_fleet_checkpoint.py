"""Interrupt/resume tests for ``FleetTrainer.fit`` in both fleet modes."""
import dataclasses

import numpy as np
import pytest

from repro.fleet import FLEET_MODES, FleetConfig, FleetTrainer
from repro.split import Checkpoint, ExperimentConfig, TrainingConfig

MAX_ROUNDS = 3


@pytest.fixture()
def config(tiny_model_config):
    return ExperimentConfig(
        model=tiny_model_config,
        training=TrainingConfig(
            batch_size=16, max_epochs=MAX_ROUNDS, steps_per_epoch=2, seed=5
        ),
    )


def records_of(history):
    return [dataclasses.asdict(record) for record in history.records]


def fleet_weights(trainer):
    state = {f"bs.{k}": v for k, v in trainer.fleet.bs.get_weights().items()}
    for member in trainer.fleet.members:
        state.update(
            {f"ue{member.index}.{k}": v for k, v in member.ue.get_weights().items()}
        )
    return state


@pytest.mark.parametrize("mode", FLEET_MODES)
def test_n2_resume_is_bit_identical(mode, config, small_split, tmp_path):
    fleet_config = FleetConfig(num_ues=2, mode=mode)
    reference_trainer = FleetTrainer(config, fleet_config)
    reference = reference_trainer.fit(
        small_split.train, small_split.validation, max_rounds=MAX_ROUNDS
    )
    assert len(reference.records) == MAX_ROUNDS
    reference_weights = fleet_weights(reference_trainer)

    for stop_after in range(1, MAX_ROUNDS):
        path = tmp_path / f"{mode}-{stop_after}.npz"
        FleetTrainer(config, fleet_config).fit(
            small_split.train,
            small_split.validation,
            max_rounds=stop_after,
            checkpoint_path=path,
        )
        resumed_trainer = FleetTrainer(config, fleet_config)
        resumed = resumed_trainer.fit(
            small_split.train,
            small_split.validation,
            max_rounds=MAX_ROUNDS,
            resume_from=path,
        )
        assert records_of(resumed) == records_of(reference)
        assert resumed.total_elapsed_s == reference.total_elapsed_s
        assert resumed.medium_busy_s == reference.medium_busy_s
        assert dataclasses.asdict(resumed.communication) == dataclasses.asdict(
            reference.communication
        )
        assert [dataclasses.asdict(stats) for stats in resumed.per_ue_communication] == [
            dataclasses.asdict(stats) for stats in reference.per_ue_communication
        ]
        restored = fleet_weights(resumed_trainer)
        for key, value in reference_weights.items():
            assert np.array_equal(value, restored[key]), (mode, stop_after, key)


@pytest.mark.parametrize("mode", FLEET_MODES)
def test_n2_topk_codec_resume_is_bit_identical(mode, config, small_split, tmp_path):
    """Per-member top-k error-feedback residuals survive a fleet checkpoint."""
    topk_config = dataclasses.replace(
        config,
        model=dataclasses.replace(
            config.model, codec="topk", codec_topk_fraction=0.25
        ),
    )
    fleet_config = FleetConfig(num_ues=2, mode=mode)
    reference_trainer = FleetTrainer(topk_config, fleet_config)
    reference = reference_trainer.fit(
        small_split.train, small_split.validation, max_rounds=MAX_ROUNDS
    )
    reference_weights = fleet_weights(reference_trainer)

    stop_after = MAX_ROUNDS - 1
    path = tmp_path / f"topk-{mode}.npz"
    FleetTrainer(topk_config, fleet_config).fit(
        small_split.train,
        small_split.validation,
        max_rounds=stop_after,
        checkpoint_path=path,
    )
    resumed_trainer = FleetTrainer(topk_config, fleet_config)
    resumed = resumed_trainer.fit(
        small_split.train,
        small_split.validation,
        max_rounds=MAX_ROUNDS,
        resume_from=path,
    )
    assert records_of(resumed) == records_of(reference)
    assert resumed.total_elapsed_s == reference.total_elapsed_s
    restored = fleet_weights(resumed_trainer)
    for key, value in reference_weights.items():
        assert np.array_equal(value, restored[key]), (mode, key)
    for ref_member, res_member in zip(
        reference_trainer.fleet.members, resumed_trainer.fleet.members
    ):
        ref_state = ref_member.protocol.codec.state_dict()["residuals"]
        res_state = res_member.protocol.codec.state_dict()["residuals"]
        assert ref_state, (mode, ref_member.index)  # residuals did accumulate
        assert set(ref_state) == set(res_state)
        for stream, residual in ref_state.items():
            assert np.array_equal(residual, res_state[stream]), (
                mode,
                ref_member.index,
                stream,
            )


def test_rotation_checkpoint_preserves_weight_holder(config, small_split, tmp_path):
    fleet_config = FleetConfig(num_ues=2, mode="rotation")
    path = tmp_path / "rotation.npz"
    trainer = FleetTrainer(config, fleet_config)
    trainer.fit(
        small_split.train, small_split.validation, max_rounds=1, checkpoint_path=path
    )
    holder = trainer.fleet.weight_holder
    assert holder == 1  # the round ended on the last member's turn
    restored = FleetTrainer(config, fleet_config)
    restored.load_state_dict(Checkpoint.load(path).state)
    assert restored.fleet.weight_holder == holder


def test_checkpoint_rejects_mismatched_fleet_shape(config, small_split, tmp_path):
    path = tmp_path / "n2.npz"
    FleetTrainer(config, FleetConfig(num_ues=2, mode="rotation")).fit(
        small_split.train, small_split.validation, max_rounds=1, checkpoint_path=path
    )
    with pytest.raises(ValueError, match="num_ues"):
        FleetTrainer(config, FleetConfig(num_ues=3, mode="rotation")).fit(
            small_split.train, small_split.validation, resume_from=path
        )
    with pytest.raises(ValueError, match="mode"):
        FleetTrainer(config, FleetConfig(num_ues=2, mode="parallel_average")).fit(
            small_split.train, small_split.validation, resume_from=path
        )


def test_split_checkpoint_rejected_by_fleet(config, small_split, tmp_path):
    from repro.split import SplitTrainer

    path = tmp_path / "split.npz"
    SplitTrainer(config).fit(
        small_split.train, small_split.validation, max_epochs=1, checkpoint_path=path
    )
    with pytest.raises(ValueError, match="fleet"):
        FleetTrainer(config, FleetConfig(num_ues=2, mode="rotation")).fit(
            small_split.train, small_split.validation, resume_from=path
        )
