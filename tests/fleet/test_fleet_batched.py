"""The batched fleet backend vs. the per-member loop, plus the UE bank.

``FleetConfig.backend`` selects between the Python member loop and the
stacked (member-axis) kernels; the two are bitwise-identical, which these
tests pin at three levels: the raw :class:`StackedUEBank` against deep-copied
``UEClient`` loops, full ``FleetTrainer.fit`` histories and weights across
backends, and checkpoint interrupt/resume under the batched backend.
"""
import copy
import dataclasses

import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetTrainer, StackedUEBank
from repro.split import ExperimentConfig, TrainingConfig
from repro.split.config import ModelConfig
from repro.split.ue import UEClient

from tests.fleet.test_fleet_checkpoint import fleet_weights, records_of

MAX_ROUNDS = 3


@pytest.fixture()
def config(tiny_model_config):
    return ExperimentConfig(
        model=tiny_model_config,
        training=TrainingConfig(
            batch_size=16, max_epochs=MAX_ROUNDS, steps_per_epoch=2, seed=5
        ),
    )


# -- backend selection --------------------------------------------------------------


def test_backend_validation():
    with pytest.raises(ValueError, match="backend"):
        FleetConfig(backend="simd")
    with pytest.raises(ValueError, match="parallel_average"):
        FleetConfig(mode="rotation", backend="batched")
    # Rotation under auto stays on the loop; parallel averaging vectorizes.
    assert FleetConfig(mode="rotation").resolved_backend() == "loop"
    assert FleetConfig(mode="parallel_average").resolved_backend() == "batched"
    assert (
        FleetConfig(mode="parallel_average", backend="loop").resolved_backend()
        == "loop"
    )


# -- the stacked bank vs. per-member clients ----------------------------------------


def _bank_clients(members=4):
    model = ModelConfig(
        image_height=12,
        image_width=12,
        pooling_height=4,
        pooling_width=4,
        cnn_channels=(2,),
        rnn_hidden_size=8,
        head_hidden_size=4,
        sequence_length=2,
    )
    training = TrainingConfig(gradient_clip_norm=1.0)
    return [UEClient(model, training, seed=member) for member in range(members)]


def test_bank_round_trip_matches_client_loop():
    """gather -> masked steps -> scatter equals each client updating itself."""
    rng = np.random.default_rng(17)
    clients = _bank_clients()
    loop_clients = copy.deepcopy(clients)
    bank = StackedUEBank(clients)
    members = bank.num_members

    masks = rng.random((3, members)) < 0.7
    masks[0] = True
    for mask in masks:
        images = rng.random((members, 3, 2, 12, 12))
        features = bank.forward(images)
        for member, client in enumerate(loop_clients):
            expected = client.forward(images[member])
            assert np.array_equal(features[member], expected)
        cut_gradients = rng.standard_normal(features.shape)
        cut_gradients[~mask] = 0.0
        bank.backward(cut_gradients)
        bank.apply_updates(mask)
        for member, client in enumerate(loop_clients):
            if mask[member]:
                client.backward(cut_gradients[member])
                client.apply_update()
            else:
                client.zero_grad()
    bank.scatter()

    for stacked_client, loop_client in zip(clients, loop_clients):
        for key, value in loop_client.get_weights().items():
            assert np.array_equal(stacked_client.get_weights()[key], value)
        assert (
            stacked_client.optimizer.step_count
            == loop_client.optimizer.step_count
        )
        stacked_slots = stacked_client.optimizer._slots()
        loop_slots = loop_client.optimizer._slots()
        for slot in ("first_moment", "second_moment"):
            for stacked_arr, loop_arr in zip(stacked_slots[slot], loop_slots[slot]):
                assert np.array_equal(stacked_arr, loop_arr)


def test_bank_state_dict_round_trip():
    rng = np.random.default_rng(3)
    clients = _bank_clients(members=2)
    bank = StackedUEBank(clients)
    features = bank.forward(rng.random((2, 2, 2, 12, 12)))
    bank.backward(rng.standard_normal(features.shape))
    bank.apply_updates(np.array([True, True]))
    state = bank.state_dict()

    restored = StackedUEBank(_bank_clients(members=2))
    restored.load_state_dict(state)
    for key, value in restored.state_dict().items():
        assert np.array_equal(value, state[key])
    with pytest.raises(KeyError):
        restored.load_state_dict({"step_counts": state["step_counts"]})
    with pytest.raises(ValueError):
        restored.load_state_dict({**state, "values/99": state["values/0"]})


def test_bank_rejects_heterogeneous_members():
    clients = _bank_clients(members=2)
    other_model = dataclasses.replace(clients[0].model_config, cnn_channels=(4,))
    mismatched = UEClient(other_model, TrainingConfig(), seed=9)
    with pytest.raises(ValueError, match="identical architectures"):
        StackedUEBank([clients[0], mismatched])
    without_optimizer = UEClient(clients[0].model_config, None, seed=1)
    with pytest.raises(ValueError, match="Adam"):
        StackedUEBank([clients[0], without_optimizer])


# -- full-run equivalence -----------------------------------------------------------


def test_batched_and_loop_backends_train_identically(config, small_split):
    def run(backend):
        trainer = FleetTrainer(
            config,
            FleetConfig(num_ues=3, mode="parallel_average", backend=backend),
        )
        history = trainer.fit(
            small_split.train, small_split.validation, max_rounds=MAX_ROUNDS
        )
        return history, fleet_weights(trainer)

    loop_history, loop_weights = run("loop")
    batched_history, batched_weights = run("batched")
    assert records_of(batched_history) == records_of(loop_history)
    assert batched_history.total_elapsed_s == loop_history.total_elapsed_s
    assert batched_history.medium_busy_s == loop_history.medium_busy_s
    assert dataclasses.asdict(batched_history.communication) == dataclasses.asdict(
        loop_history.communication
    )
    for key, value in loop_weights.items():
        assert np.array_equal(value, batched_weights[key]), key


def test_batched_resume_is_bit_identical(config, small_split, tmp_path):
    """Interrupt an N=8 batched run mid-way; the resume must lose nothing."""
    fleet_config = FleetConfig(
        num_ues=8, mode="parallel_average", backend="batched"
    )
    reference_trainer = FleetTrainer(config, fleet_config)
    reference = reference_trainer.fit(
        small_split.train, small_split.validation, max_rounds=MAX_ROUNDS
    )
    reference_weights = fleet_weights(reference_trainer)

    path = tmp_path / "batched-n8.npz"
    FleetTrainer(config, fleet_config).fit(
        small_split.train,
        small_split.validation,
        max_rounds=MAX_ROUNDS - 1,
        checkpoint_path=path,
    )
    resumed_trainer = FleetTrainer(config, fleet_config)
    resumed = resumed_trainer.fit(
        small_split.train,
        small_split.validation,
        max_rounds=MAX_ROUNDS,
        resume_from=path,
    )
    assert records_of(resumed) == records_of(reference)
    assert resumed.total_elapsed_s == reference.total_elapsed_s
    restored = fleet_weights(resumed_trainer)
    for key, value in reference_weights.items():
        assert np.array_equal(value, restored[key]), key


def test_checkpoints_interchange_across_backends(config, small_split, tmp_path):
    """A checkpoint written under one backend resumes under the other."""
    loop_config = FleetConfig(num_ues=2, mode="parallel_average", backend="loop")
    batched_config = FleetConfig(
        num_ues=2, mode="parallel_average", backend="batched"
    )
    reference_trainer = FleetTrainer(config, loop_config)
    reference = reference_trainer.fit(
        small_split.train, small_split.validation, max_rounds=MAX_ROUNDS
    )

    path = tmp_path / "loop-written.npz"
    FleetTrainer(config, loop_config).fit(
        small_split.train,
        small_split.validation,
        max_rounds=1,
        checkpoint_path=path,
    )
    resumed_trainer = FleetTrainer(config, batched_config)
    resumed = resumed_trainer.fit(
        small_split.train,
        small_split.validation,
        max_rounds=MAX_ROUNDS,
        resume_from=path,
    )
    assert records_of(resumed) == records_of(reference)
    reference_weights = fleet_weights(reference_trainer)
    restored = fleet_weights(resumed_trainer)
    for key, value in reference_weights.items():
        assert np.array_equal(value, restored[key]), key
