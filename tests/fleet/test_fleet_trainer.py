"""Tests for ``UEFleet`` / ``FleetTrainer``.

The anchor of the subsystem: a fleet of one in rotation mode must reproduce
the single-UE ``SplitTrainer`` *draw for draw* — identical elapsed times,
losses, RMSE trajectory and communication statistics.
"""
import numpy as np
import pytest

from repro.fleet import FleetConfig, FleetTrainer, UEFleet, shard_indices
from repro.scenarios import fleet_channel_params, fleet_placements
from repro.split import ExperimentConfig
from repro.split.trainer import SplitTrainer


@pytest.fixture(scope="module")
def smoke_config(smoke_scale):
    return ExperimentConfig.for_scenario(
        smoke_scale.scenario,
        model=smoke_scale.base_model_config(),
        training=smoke_scale.training_config(),
    )


# -- the N=1 correctness anchor -----------------------------------------------------


def test_single_ue_rotation_reproduces_split_trainer(smoke_config, smoke_split):
    single = SplitTrainer(smoke_config).fit(
        smoke_split.train, smoke_split.validation
    )
    fleet = FleetTrainer(
        smoke_config, FleetConfig(num_ues=1, mode="rotation")
    ).fit(smoke_split.train, smoke_split.validation)

    assert len(fleet.records) == len(single.records)
    for single_record, fleet_record in zip(single.records, fleet.records):
        assert fleet_record.round == single_record.epoch
        assert fleet_record.elapsed_s == single_record.elapsed_s
        assert fleet_record.validation_rmse_db == single_record.validation_rmse_db
        assert fleet_record.steps == single_record.steps
        assert fleet_record.lost_steps == single_record.lost_steps
        if np.isnan(single_record.train_loss):
            assert np.isnan(fleet_record.train_loss)
        else:
            assert fleet_record.train_loss == single_record.train_loss
    assert fleet.total_elapsed_s == single.total_elapsed_s
    assert fleet.reached_target == single.reached_target

    # Communication statistics must match field for field.
    assert fleet.communication is not None and single.communication is not None
    assert fleet.communication.steps == single.communication.steps
    assert fleet.communication.uplink_slots == single.communication.uplink_slots
    assert (
        fleet.communication.downlink_slots == single.communication.downlink_slots
    )
    assert fleet.communication.slots_mean == single.communication.slots_mean
    assert (
        fleet.communication.latency_mean_s == single.communication.latency_mean_s
    )


def test_single_ue_parallel_average_matches_single_trainer_rmse(
    smoke_config, smoke_split
):
    """N=1 parallel averaging is averaging over one client: same trajectory."""
    single = SplitTrainer(smoke_config).fit(
        smoke_split.train, smoke_split.validation
    )
    fleet = FleetTrainer(
        smoke_config, FleetConfig(num_ues=1, mode="parallel_average")
    ).fit(smoke_split.train, smoke_split.validation)
    assert np.array_equal(
        fleet.validation_rmse_curve_db, single.validation_rmse_curve_db
    )
    assert fleet.total_elapsed_s == single.total_elapsed_s


def test_single_ue_parallel_average_matches_trainer_on_lossy_link(
    smoke_scale, smoke_split
):
    """Elapsed-time accounting stays mode-consistent when steps are lost.

    With a retransmission cap and a heavy payload some exchanges fail; lost
    steps must charge the same compute + communication time in both the
    single-UE trainer and an N=1 parallel-average fleet (the BS compute slot
    is charged on lost steps too).
    """
    from dataclasses import replace

    from repro.channel import PAPER_CHANNEL_PARAMS
    from repro.channel.params import LinkParams

    # A 32 m link drops the uplink per-slot success probability to ~0.5 for
    # the unpooled smoke payload, and the weakened downlink to ~0.4; with a
    # zero-retransmission cap both directions fail regularly, exercising the
    # gated-downlink path and the wholly-lost joint step (BS must not update).
    config = ExperimentConfig(
        model=smoke_scale.base_model_config().with_pooling(1),
        training=replace(smoke_scale.training_config(), max_retransmissions=0),
        channel=replace(
            PAPER_CHANNEL_PARAMS,
            distance_m=32.0,
            downlink=LinkParams(transmit_power_dbm=-10.0, bandwidth_hz=100e6),
        ),
    )
    single = SplitTrainer(config).fit(
        smoke_split.train, smoke_split.validation, max_epochs=4
    )
    fleet = FleetTrainer(
        config, FleetConfig(num_ues=1, mode="parallel_average")
    ).fit(smoke_split.train, smoke_split.validation, max_rounds=4)
    assert sum(r.lost_steps for r in single.records) > 0  # the link is lossy
    assert single.communication.uplink_failures > 0
    assert single.communication.downlink_failures > 0  # ... both directions
    assert fleet.total_elapsed_s == single.total_elapsed_s
    assert [r.lost_steps for r in fleet.records] == [
        r.lost_steps for r in single.records
    ]
    assert np.array_equal(
        fleet.validation_rmse_curve_db, single.validation_rmse_curve_db
    )
    assert fleet.communication.downlink_failures == (
        single.communication.downlink_failures
    )


# -- determinism --------------------------------------------------------------------


@pytest.mark.parametrize("mode", ["rotation", "parallel_average"])
def test_same_seed_same_trajectory(smoke_config, smoke_split, mode):
    def run():
        return FleetTrainer(
            smoke_config, FleetConfig(num_ues=2, mode=mode)
        ).fit(smoke_split.train, smoke_split.validation, max_rounds=2)

    first, second = run(), run()
    assert np.array_equal(
        first.validation_rmse_curve_db, second.validation_rmse_curve_db
    )
    assert np.array_equal(first.elapsed_times_s, second.elapsed_times_s)
    assert first.medium_busy_s == second.medium_busy_s
    assert first.communication.steps == second.communication.steps
    assert first.communication.slots_mean == second.communication.slots_mean


# -- fleet construction -------------------------------------------------------------


def test_fleet_requires_image_branch(smoke_config):
    from dataclasses import replace

    rf_only = replace(
        smoke_config, model=replace(smoke_config.model, use_image=False)
    )
    with pytest.raises(ValueError, match="RF-only"):
        UEFleet(rf_only, FleetConfig(num_ues=2))


def test_fleet_member_zero_keeps_nominal_channel(smoke_config):
    fleet = UEFleet(smoke_config, FleetConfig(num_ues=4))
    assert fleet.members[0].channel == smoke_config.channel
    jittered = {member.channel.distance_m for member in fleet.members[1:]}
    assert len(jittered) == 3  # distinct placements
    assert all(
        distance != smoke_config.channel.distance_m for distance in jittered
    )


def test_fleet_members_start_from_identical_weights(smoke_config):
    fleet = UEFleet(smoke_config, FleetConfig(num_ues=3))
    reference = fleet.members[0].ue.get_weights()
    for member in fleet.members[1:]:
        state = member.ue.get_weights()
        assert all(np.array_equal(reference[key], state[key]) for key in reference)


def test_fleet_shares_one_bs(smoke_config):
    fleet = UEFleet(smoke_config, FleetConfig(num_ues=3))
    assert all(
        member.protocol.bs is fleet.bs for member in fleet.members
    )
    # ... but UEs and channels are private.
    ues = {id(member.ue) for member in fleet.members}
    sessions = {id(member.arq) for member in fleet.members}
    assert len(ues) == 3 and len(sessions) == 3


def test_hand_off_moves_weights(smoke_config):
    fleet = UEFleet(smoke_config, FleetConfig(num_ues=2))
    # Perturb member 0's weights, then hand off to member 1.
    state = fleet.members[0].ue.get_weights()
    key = next(iter(state))
    state[key] = state[key] + 1.0
    fleet.members[0].ue.set_weights(state)
    fleet.hand_off_to(1)
    assert fleet.weight_holder == 1
    received = fleet.members[1].ue.get_weights()
    assert np.array_equal(received[key], state[key])


def test_average_ue_weights_broadcasts_mean(smoke_config):
    fleet = UEFleet(smoke_config, FleetConfig(num_ues=2))
    state_a = fleet.members[0].ue.get_weights()
    state_b = {key: value + 2.0 for key, value in state_a.items()}
    fleet.members[1].ue.set_weights(state_b)
    fleet.average_ue_weights()
    for member in fleet.members:
        averaged = member.ue.get_weights()
        for key in state_a:
            assert np.allclose(averaged[key], state_a[key] + 1.0)


def test_parallel_average_leaves_members_identical(smoke_config, smoke_split):
    trainer = FleetTrainer(
        smoke_config, FleetConfig(num_ues=3, mode="parallel_average")
    )
    trainer.fit(smoke_split.train, smoke_split.validation, max_rounds=1)
    states = [member.ue.get_weights() for member in trainer.fleet]
    for state in states[1:]:
        assert all(
            np.array_equal(states[0][key], state[key]) for key in states[0]
        )


# -- medium accounting --------------------------------------------------------------


def test_parallel_average_round_is_faster_than_rotation(
    smoke_config, smoke_split
):
    """N batches per round cost less wall-clock when compute is amortized."""
    rotation = FleetTrainer(
        smoke_config, FleetConfig(num_ues=4, mode="rotation")
    ).fit(smoke_split.train, smoke_split.validation, max_rounds=2)
    parallel = FleetTrainer(
        smoke_config, FleetConfig(num_ues=4, mode="parallel_average")
    ).fit(smoke_split.train, smoke_split.validation, max_rounds=2)
    assert parallel.records[0].steps == rotation.records[0].steps
    assert (
        parallel.records[0].round_duration_s < rotation.records[0].round_duration_s
    )
    # ... precisely because the medium is busier.
    assert parallel.records[0].medium_occupancy > rotation.records[0].medium_occupancy


def test_medium_occupancy_bounds(smoke_config, smoke_split):
    history = FleetTrainer(
        smoke_config, FleetConfig(num_ues=2, mode="parallel_average")
    ).fit(smoke_split.train, smoke_split.validation, max_rounds=2)
    assert 0.0 < history.medium_occupancy < 1.0
    for record in history.records:
        assert 0.0 < record.medium_occupancy < 1.0
        assert record.medium_busy_s < record.round_duration_s


def test_per_ue_statistics_merge_to_fleet_statistics(smoke_config, smoke_split):
    history = FleetTrainer(
        smoke_config, FleetConfig(num_ues=3, mode="parallel_average")
    ).fit(smoke_split.train, smoke_split.validation, max_rounds=2)
    assert len(history.per_ue_communication) == 3
    total_steps = sum(stats.steps for stats in history.per_ue_communication)
    assert history.communication.steps == total_steps
    total_slots = sum(
        stats.uplink_slots + stats.downlink_slots
        for stats in history.per_ue_communication
    )
    assert (
        history.communication.uplink_slots + history.communication.downlink_slots
        == total_slots
    )


# -- sharding and placement ---------------------------------------------------------


def test_shard_indices_partition():
    shards = shard_indices(10, 3)
    combined = np.sort(np.concatenate(shards))
    assert np.array_equal(combined, np.arange(10))
    assert [len(shard) for shard in shards] == [4, 3, 3]
    assert np.array_equal(shard_indices(7, 1)[0], np.arange(7))
    with pytest.raises(ValueError):
        shard_indices(2, 3)


def test_fleet_placements_deterministic_and_anchored():
    first = fleet_placements("paper_baseline", 4, seed=5)
    second = fleet_placements("paper_baseline", 4, seed=5)
    assert first == second
    assert first[0] == 4.0  # nominal paper distance, never jittered
    different = fleet_placements("paper_baseline", 4, seed=6)
    assert different[1:] != first[1:]
    assert fleet_placements("paper_baseline", 1, seed=5) == (4.0,)


def test_fleet_channel_params_only_distance_changes():
    channels = fleet_channel_params("paper_baseline", 3, seed=0)
    nominal = channels[0]
    for channel in channels[1:]:
        assert channel.distance_m != nominal.distance_m
        assert channel.uplink == nominal.uplink
        assert channel.downlink == nominal.downlink
        assert channel.slot_duration_s == nominal.slot_duration_s


def test_fleet_config_validation():
    with pytest.raises(ValueError):
        FleetConfig(num_ues=0)
    with pytest.raises(ValueError):
        FleetConfig(mode="gossip")
    with pytest.raises(ValueError):
        FleetConfig(scheduler="fifo")
    with pytest.raises(ValueError):
        FleetConfig(placement_jitter=1.5)
