"""Artifact schema and determinism tests for the fleet-scaling experiment."""
import json

import numpy as np
import pytest

from repro.experiments import run_fleet_scaling
from repro.experiments.fig_fleet_scaling import FLEET_ARTIFACT_SCHEMA_VERSION
from repro.split import ExperimentConfig
from repro.split.trainer import SplitTrainer

UE_COUNTS = (1, 2, 4)

#: Keys every cell of the artifact must carry.
REQUIRED_CELL_KEYS = {
    "num_ues",
    "scheme",
    "scheduler",
    "rounds",
    "rmse_curve_db",
    "elapsed_s",
    "round_duration_s",
    "medium_occupancy_per_round",
    "final_rmse_db",
    "best_rmse_db",
    "reached_target",
    "total_elapsed_s",
    "medium_busy_s",
    "medium_occupancy",
    "lost_steps",
}

#: Merged communication statistics expected per cell (``comm_*`` keys).
REQUIRED_COMM_KEYS = {
    "comm_steps",
    "comm_uplink_slots",
    "comm_downlink_slots",
    "comm_uplink_failures",
    "comm_downlink_failures",
    "comm_downlink_skipped",
    "comm_mean_slots_per_step",
    "comm_slots_std",
    "comm_mean_step_latency_s",
    "comm_latency_std_s",
    "comm_uplink_first_attempt_success_rate",
    "comm_downlink_first_attempt_success_rate",
    "comm_total_elapsed_s",
}


@pytest.fixture(scope="module")
def scaling_result(smoke_scale, smoke_split):
    return run_fleet_scaling(
        scale=smoke_scale,
        split=smoke_split,
        ue_counts=UE_COUNTS,
        max_rounds=2,
    )


def test_artifact_schema(scaling_result):
    artifact = scaling_result.artifact()
    assert artifact["schema_version"] == FLEET_ARTIFACT_SCHEMA_VERSION
    assert artifact["experiment"] == "fig_fleet_scaling"
    assert artifact["ue_counts"] == list(UE_COUNTS)
    assert set(artifact["modes"]) == {"rotation", "parallel_average"}
    for mode in artifact["modes"]:
        assert set(artifact["cells"][mode]) == {str(n) for n in UE_COUNTS}
        for num_ues in UE_COUNTS:
            cell = artifact["cells"][mode][str(num_ues)]
            assert REQUIRED_CELL_KEYS <= set(cell)
            assert REQUIRED_COMM_KEYS <= set(cell)
            assert cell["num_ues"] == num_ues
            assert len(cell["rmse_curve_db"]) == cell["rounds"]
            assert len(cell["elapsed_s"]) == cell["rounds"]
            assert 0.0 < cell["medium_occupancy"] < 1.0
            # Elapsed times are a learning-curve x axis: strictly increasing.
            assert np.all(np.diff(cell["elapsed_s"]) > 0)
    # The artifact must be JSON-serializable as-is.
    json.dumps(artifact)


def test_artifact_deterministic(smoke_scale, smoke_split):
    def artifact():
        return run_fleet_scaling(
            scale=smoke_scale,
            split=smoke_split,
            ue_counts=(1, 2),
            modes=("parallel_average",),
            max_rounds=2,
        ).artifact()

    assert json.dumps(artifact(), sort_keys=True) == json.dumps(
        artifact(), sort_keys=True
    )


def test_n1_rotation_cell_equals_single_ue_golden(
    smoke_scale, smoke_split, scaling_result
):
    """The N=1 rotation column is the single-UE trainer, draw for draw."""
    config = ExperimentConfig.for_scenario(
        smoke_scale.scenario,
        model=smoke_scale.base_model_config(),
        training=smoke_scale.training_config(),
    )
    golden = SplitTrainer(config).fit(
        smoke_split.train, smoke_split.validation, max_epochs=2
    )
    cell = scaling_result.artifact()["cells"]["rotation"]["1"]
    assert cell["rmse_curve_db"] == golden.validation_rmse_curve_db.tolist()
    assert cell["elapsed_s"] == golden.elapsed_times_s.tolist()


def test_fleet_sizes_cover_requested_counts(scaling_result):
    for mode in ("rotation", "parallel_average"):
        for num_ues in UE_COUNTS:
            history = scaling_result.history(mode, num_ues)
            assert history.num_ues == num_ues
            assert history.mode == mode


def test_run_fleet_scaling_validation(smoke_scale, smoke_split):
    with pytest.raises(ValueError):
        run_fleet_scaling(
            scale=smoke_scale, split=smoke_split, ue_counts=()
        )
    with pytest.raises(ValueError):
        run_fleet_scaling(
            scale=smoke_scale, split=smoke_split, modes=("gossip",)
        )


def test_cli_writes_artifact(tmp_path):
    from repro.experiments import fig_fleet_scaling

    output = tmp_path / "fleet.json"
    exit_code = fig_fleet_scaling.main(
        [
            "--scale",
            "smoke",
            "--ues",
            "1",
            "2",
            "--modes",
            "parallel_average",
            "--max-rounds",
            "1",
            "--output",
            str(output),
        ]
    )
    assert exit_code == 0
    artifact = json.loads(output.read_text())
    assert artifact["schema_version"] == FLEET_ARTIFACT_SCHEMA_VERSION
    assert set(artifact["cells"]["parallel_average"]) == {"1", "2"}
