"""Tests for sequence building, splitting and caching."""
import numpy as np
import pytest

from repro.dataset import (
    PAPER_HORIZON_S,
    PAPER_SEQUENCE_LENGTH,
    PAPER_TRAIN_FRACTION,
    DatasetConfig,
    build_sequences,
    config_fingerprint,
    get_or_generate,
    horizon_in_frames,
    load_dataset,
    paper_split,
    save_dataset,
    temporal_split,
)


def test_paper_sequence_constants():
    assert PAPER_SEQUENCE_LENGTH == 4
    assert PAPER_HORIZON_S == pytest.approx(0.120)
    assert 0.74 < PAPER_TRAIN_FRACTION < 0.76


def test_horizon_in_frames_paper_values():
    assert horizon_in_frames(0.120, 0.033) == 4
    assert horizon_in_frames(0.033, 0.033) == 1
    assert horizon_in_frames(0.01, 0.033) == 1  # never less than one frame
    with pytest.raises(ValueError):
        horizon_in_frames(0.0, 0.033)


def test_build_sequences_shapes(small_dataset, small_sequences):
    horizon = horizon_in_frames(PAPER_HORIZON_S, small_dataset.frame_interval_s)
    expected = len(small_dataset) - (PAPER_SEQUENCE_LENGTH - 1) - horizon
    assert len(small_sequences) == expected
    assert small_sequences.image_sequences.shape == (expected, 4, 12, 12)
    assert small_sequences.power_sequences.shape == (expected, 4)
    assert small_sequences.targets.shape == (expected,)
    assert small_sequences.sequence_length == 4
    assert small_sequences.image_shape == (12, 12)


def test_sequences_are_correctly_aligned(small_dataset, small_sequences):
    horizon = small_sequences.horizon_frames
    index = 10
    k = small_sequences.last_indices[index]
    assert np.allclose(
        small_sequences.image_sequences[index, -1], small_dataset.images[k]
    )
    assert np.allclose(
        small_sequences.image_sequences[index, 0], small_dataset.images[k - 3]
    )
    assert small_sequences.power_sequences[index, -1] == pytest.approx(
        small_dataset.powers_dbm[k]
    )
    assert small_sequences.targets[index] == pytest.approx(
        small_dataset.powers_dbm[k + horizon]
    )


def test_target_times(small_sequences, small_dataset):
    times = small_sequences.target_times_s
    expected = (
        small_sequences.last_indices + small_sequences.horizon_frames
    ) * small_dataset.frame_interval_s
    assert np.allclose(times, expected)


def test_build_sequences_too_short_dataset(small_dataset):
    tiny = small_dataset.slice(0, 5)
    with pytest.raises(ValueError):
        build_sequences(tiny, sequence_length=4, horizon_s=0.12)


def test_build_sequences_normalize_power(small_dataset):
    sequences = build_sequences(small_dataset, normalize_power=True)
    assert sequences.power_sequences.mean() == pytest.approx(0.0, abs=1e-9)
    assert sequences.power_sequences.std() == pytest.approx(1.0, abs=1e-9)


def test_sequence_subset(small_sequences):
    subset = small_sequences.subset([0, 5, 9])
    assert len(subset) == 3
    assert np.allclose(subset.targets, small_sequences.targets[[0, 5, 9]])


def test_temporal_split_order_and_sizes(small_sequences):
    split = temporal_split(small_sequences, train_fraction=0.8)
    assert len(split.train) + len(split.validation) == len(small_sequences)
    assert split.train_fraction == pytest.approx(0.8, abs=0.02)
    assert split.train.last_indices.max() < split.validation.last_indices.min()


def test_temporal_split_validation(small_sequences):
    with pytest.raises(ValueError):
        temporal_split(small_sequences, train_fraction=0.0)
    with pytest.raises(ValueError):
        temporal_split(small_sequences.subset([0]), train_fraction=0.5)


def test_paper_split_small_dataset_uses_fraction(small_sequences):
    split = paper_split(small_sequences)
    assert 0.70 < split.train_fraction < 0.80


def test_save_and_load_dataset_roundtrip(tmp_path, small_dataset):
    path = tmp_path / "dataset.npz"
    save_dataset(small_dataset, path)
    loaded = load_dataset(path)
    assert np.allclose(loaded.images, small_dataset.images)
    assert np.allclose(loaded.powers_dbm, small_dataset.powers_dbm)
    assert loaded.frame_interval_s == pytest.approx(small_dataset.frame_interval_s)
    assert loaded.metadata["num_samples"] == 260


def test_load_missing_dataset_raises(tmp_path):
    with pytest.raises(FileNotFoundError):
        load_dataset(tmp_path / "nope.npz")


def test_config_fingerprint_stability():
    config_a = DatasetConfig(num_samples=100, seed=1)
    config_b = DatasetConfig(num_samples=100, seed=1)
    config_c = DatasetConfig(num_samples=101, seed=1)
    assert config_fingerprint(config_a) == config_fingerprint(config_b)
    assert config_fingerprint(config_a) != config_fingerprint(config_c)


def test_get_or_generate_uses_cache(tmp_path):
    config = DatasetConfig(num_samples=60, image_height=8, image_width=8, seed=2)
    first = get_or_generate(config, cache_dir=tmp_path)
    cached_files = list(tmp_path.glob("dataset-*.npz"))
    assert len(cached_files) == 1
    second = get_or_generate(config, cache_dir=tmp_path)
    assert np.allclose(first.powers_dbm, second.powers_dbm)
    # Force regeneration still works and produces identical data (same seed).
    third = get_or_generate(config, cache_dir=tmp_path, force_regenerate=True)
    assert np.allclose(first.powers_dbm, third.powers_dbm)
