"""Tests for the synthetic dataset generator."""
import numpy as np
import pytest

from repro.dataset import (
    DatasetConfig,
    DepthPowerDataset,
    MmWaveDepthDatasetGenerator,
    PAPER_NUM_SAMPLES,
    PAPER_TRAIN_BOUNDARY,
    generate_small_dataset,
)


def test_paper_constants():
    assert PAPER_NUM_SAMPLES == 13228
    assert PAPER_TRAIN_BOUNDARY == 9928


def test_dataset_config_defaults_match_paper():
    config = DatasetConfig()
    assert config.num_samples == PAPER_NUM_SAMPLES
    assert config.image_height == 40 and config.image_width == 40
    assert config.frame_interval_s == pytest.approx(0.033)
    assert config.link_distance_m == pytest.approx(4.0)
    assert config.duration_s == pytest.approx(13228 * 0.033)


def test_dataset_config_validation():
    with pytest.raises(ValueError):
        DatasetConfig(num_samples=0)
    with pytest.raises(ValueError):
        DatasetConfig(image_height=-1)
    with pytest.raises(ValueError):
        DatasetConfig(frame_interval_s=0.0)


def test_small_dataset_shapes(small_dataset):
    assert len(small_dataset) == 260
    assert small_dataset.images.shape == (260, 12, 12)
    assert small_dataset.powers_dbm.shape == (260,)
    assert small_dataset.line_of_sight_blocked.shape == (260,)
    assert small_dataset.image_shape == (12, 12)


def test_small_dataset_value_ranges(small_dataset):
    assert small_dataset.images.min() >= 0.0
    assert small_dataset.images.max() <= 1.0
    assert np.all(small_dataset.powers_dbm < 0.0)
    assert np.all(small_dataset.powers_dbm > -80.0)


def test_dataset_contains_blockage_events(small_dataset):
    assert 0.01 < small_dataset.blockage_fraction < 0.6


def test_blocked_frames_have_lower_power(small_dataset):
    blocked = small_dataset.line_of_sight_blocked
    assert small_dataset.powers_dbm[~blocked].mean() > small_dataset.powers_dbm[blocked].mean() + 8.0


def test_blocked_frames_show_closer_depth(small_dataset):
    blocked = small_dataset.line_of_sight_blocked
    # A body in the LoS is close to the camera, so the minimum depth drops.
    blocked_min = small_dataset.images[blocked].min(axis=(1, 2)).mean()
    clear_min = small_dataset.images[~blocked].min(axis=(1, 2)).mean()
    assert blocked_min < clear_min


def test_generation_is_deterministic_per_seed():
    a = generate_small_dataset(num_samples=80, image_size=8, seed=3)
    b = generate_small_dataset(num_samples=80, image_size=8, seed=3)
    c = generate_small_dataset(num_samples=80, image_size=8, seed=4)
    assert np.allclose(a.images, b.images)
    assert np.allclose(a.powers_dbm, b.powers_dbm)
    assert not np.allclose(a.powers_dbm, c.powers_dbm)


def test_times_and_metadata(small_dataset):
    times = small_dataset.times_s
    assert times[0] == 0.0
    assert times[1] == pytest.approx(small_dataset.frame_interval_s)
    assert small_dataset.metadata["num_samples"] == 260


def test_slice_returns_aligned_subset(small_dataset):
    window = small_dataset.slice(10, 20)
    assert len(window) == 10
    assert np.allclose(window.images[0], small_dataset.images[10])
    assert np.allclose(window.powers_dbm, small_dataset.powers_dbm[10:20])


def test_dataset_validation_mismatched_lengths():
    with pytest.raises(ValueError):
        DepthPowerDataset(
            images=np.zeros((5, 4, 4)),
            powers_dbm=np.zeros(4),
            line_of_sight_blocked=np.zeros(5, dtype=bool),
        )
    with pytest.raises(ValueError):
        DepthPowerDataset(
            images=np.zeros((5, 4)),
            powers_dbm=np.zeros(5),
            line_of_sight_blocked=np.zeros(5, dtype=bool),
        )


def test_generator_builds_scene_with_traffic():
    generator = MmWaveDepthDatasetGenerator(
        DatasetConfig(num_samples=150, image_height=8, image_width=8, seed=0,
                      mean_interarrival_s=1.5)
    )
    scene = generator.build_scene()
    assert len(scene.pedestrians) >= 1
    assert scene.camera.intrinsics.width == 8
