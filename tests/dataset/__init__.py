"""Test package."""
