"""Tests for the UE client and BS server halves."""
import numpy as np
import pytest

from repro.split import BSServer, ModelConfig, TrainingConfig, UEClient


@pytest.fixture()
def config():
    return ModelConfig(
        image_height=8,
        image_width=8,
        pooling_height=8,
        pooling_width=8,
        cnn_channels=(2,),
        rnn_hidden_size=6,
        head_hidden_size=0,
    )


@pytest.fixture()
def training():
    return TrainingConfig(batch_size=4, max_epochs=1)


@pytest.fixture()
def gen():
    return np.random.default_rng(2)


def test_ue_forward_shape(config, training, gen):
    ue = UEClient(config, training, seed=0)
    features = ue.forward(gen.random((3, 4, 8, 8)))
    assert features.shape == (3, 4, 1)


def test_ue_forward_shape_finer_pooling(training, gen):
    config = ModelConfig(
        image_height=8, image_width=8, pooling_height=2, pooling_width=2,
        cnn_channels=(2,),
    )
    ue = UEClient(config, training, seed=0)
    features = ue.forward(gen.random((2, 4, 8, 8)))
    assert features.shape == (2, 4, 16)


def test_ue_rejects_wrong_image_size(config, training, gen):
    ue = UEClient(config, training, seed=0)
    with pytest.raises(ValueError):
        ue.forward(gen.random((3, 4, 10, 10)))
    with pytest.raises(ValueError):
        ue.forward(gen.random((3, 8, 8)))


def test_ue_requires_image_configuration(training):
    with pytest.raises(ValueError):
        UEClient(ModelConfig(use_image=False), training)


def test_ue_output_and_compressed_images(config, training, gen):
    ue = UEClient(config, training, seed=0)
    images = gen.random((5, 8, 8))
    output = ue.output_images(images)
    assert output.shape == (5, 8, 8)
    compressed = ue.compressed_images(images)
    assert compressed.shape == (5, 1, 1)
    assert np.allclose(compressed[:, 0, 0], output.mean(axis=(1, 2)), atol=1e-9)


def test_ue_backward_and_update_changes_parameters(config, training, gen):
    ue = UEClient(config, training, seed=0)
    before = [p.value.copy() for p in ue.cnn.parameters()]
    features = ue.forward(gen.random((2, 4, 8, 8)))
    ue.backward(gen.random(features.shape))
    ue.apply_update()
    after = [p.value for p in ue.cnn.parameters()]
    assert any(not np.allclose(b, a) for b, a in zip(before, after))


def test_ue_backward_before_forward_raises(config, training):
    ue = UEClient(config, training, seed=0)
    with pytest.raises(RuntimeError):
        ue.backward(np.zeros((2, 4, 1)))


def test_ue_backward_shape_mismatch(config, training, gen):
    ue = UEClient(config, training, seed=0)
    ue.forward(gen.random((2, 4, 8, 8)))
    with pytest.raises(ValueError):
        ue.backward(np.zeros((3, 4, 1)))


def test_ue_without_optimizer_cannot_update(config, gen):
    ue = UEClient(config, training_config=None, seed=0)
    features = ue.forward(gen.random((1, 4, 8, 8)))
    ue.backward(np.zeros_like(features))
    with pytest.raises(RuntimeError):
        ue.apply_update()


# -- BS server ------------------------------------------------------------------


def test_bs_assemble_input_multimodal(config, training, gen):
    bs = BSServer(config, training, seed=0)
    features = gen.random((3, 4, 1))
    powers = gen.random((3, 4))
    inputs = bs.assemble_input(features, powers)
    assert inputs.shape == (3, 4, 2)
    assert np.allclose(inputs[..., 0], features[..., 0])
    assert np.allclose(inputs[..., 1], powers)


def test_bs_assemble_input_rf_only(training, gen):
    bs = BSServer(ModelConfig(use_image=False), training, seed=0)
    inputs = bs.assemble_input(None, gen.random((3, 4)))
    assert inputs.shape == (3, 4, 1)


def test_bs_assemble_input_image_only(config, training, gen):
    from dataclasses import replace

    bs = BSServer(replace(config, use_rf=False), training, seed=0)
    inputs = bs.assemble_input(gen.random((3, 4, 1)), None)
    assert inputs.shape == (3, 4, 1)


def test_bs_assemble_input_missing_modality_raises(config, training, gen):
    bs = BSServer(config, training, seed=0)
    with pytest.raises(ValueError):
        bs.assemble_input(None, gen.random((3, 4)))
    with pytest.raises(ValueError):
        bs.assemble_input(gen.random((3, 4, 1)), None)
    with pytest.raises(ValueError):
        bs.assemble_input(gen.random((3, 4, 7)), gen.random((3, 4)))


def test_bs_predict_shape(config, training, gen):
    bs = BSServer(config, training, seed=0)
    predictions = bs.predict(gen.random((5, 4, 1)), gen.random((5, 4)))
    assert predictions.shape == (5,)


def test_bs_loss_and_cut_gradient(config, training, gen):
    bs = BSServer(config, training, seed=0)
    features = gen.random((4, 4, 1))
    powers = gen.random((4, 4))
    targets = gen.random(4)
    loss, cut_gradient = bs.compute_loss_and_gradients(features, powers, targets)
    assert loss >= 0.0
    assert cut_gradient.shape == features.shape
    assert np.any(cut_gradient != 0.0)


def test_bs_rf_only_returns_no_cut_gradient(training, gen):
    bs = BSServer(ModelConfig(use_image=False), training, seed=0)
    loss, cut_gradient = bs.compute_loss_and_gradients(
        None, gen.random((4, 4)), gen.random(4)
    )
    assert cut_gradient is None
    assert loss >= 0.0


def test_bs_update_changes_parameters(config, training, gen):
    bs = BSServer(config, training, seed=0)
    before = [p.value.copy() for p in bs.rnn.parameters()]
    bs.compute_loss_and_gradients(gen.random((4, 4, 1)), gen.random((4, 4)), gen.random(4))
    bs.apply_update()
    after = [p.value for p in bs.rnn.parameters()]
    assert any(not np.allclose(b, a) for b, a in zip(before, after))


def test_bs_without_optimizer_cannot_update(config, gen):
    bs = BSServer(config, training_config=None, seed=0)
    with pytest.raises(RuntimeError):
        bs.apply_update()
