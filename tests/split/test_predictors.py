"""Tests for the high-level predictor API."""
import numpy as np
import pytest

from repro.split import (
    ImageOnlyPredictor,
    MultimodalSplitPredictor,
    RFOnlyPredictor,
    predictor_for_scheme,
)


def test_predictor_modality_flags(tiny_model_config, tiny_training_config):
    multimodal = MultimodalSplitPredictor(tiny_model_config, tiny_training_config)
    assert multimodal.config.model.use_image and multimodal.config.model.use_rf
    image_only = ImageOnlyPredictor(tiny_model_config, tiny_training_config)
    assert image_only.config.model.use_image and not image_only.config.model.use_rf
    rf_only = RFOnlyPredictor(tiny_model_config, tiny_training_config)
    assert not rf_only.config.model.use_image and rf_only.config.model.use_rf


def test_predictor_scheme_labels(tiny_model_config, tiny_training_config):
    assert "Img+RF" in MultimodalSplitPredictor(tiny_model_config, tiny_training_config).scheme
    assert RFOnlyPredictor(tiny_model_config, tiny_training_config).scheme == "RF-only"


def test_predictor_fit_predict_evaluate(tiny_model_config, tiny_training_config, small_split):
    predictor = MultimodalSplitPredictor(tiny_model_config, tiny_training_config)
    history = predictor.fit(small_split.train, small_split.validation)
    assert history is predictor.history
    predictions = predictor.predict(small_split.validation)
    assert predictions.shape == (len(small_split.validation),)
    rmse = predictor.evaluate(small_split.validation)
    assert 0.0 < rmse < 30.0


def test_rf_only_predictor_trains_fast_and_reasonably(
    tiny_model_config, small_split
):
    from repro.split import TrainingConfig

    predictor = RFOnlyPredictor(
        tiny_model_config, TrainingConfig(batch_size=16, max_epochs=10, steps_per_epoch=4, seed=2)
    )
    history = predictor.fit(small_split.train, small_split.validation)
    # No communication: simulated time is only compute time.
    expected = sum(r.steps for r in history.records) * history.records[0].elapsed_s / (
        history.records[0].steps * len(history.records) / len(history.records)
    )
    assert history.total_elapsed_s <= 10 * 4 * 0.03 + 1e-6
    assert predictor.evaluate(small_split.validation) < 15.0
    del expected


def test_predict_before_fit_raises(tiny_model_config, tiny_training_config, small_split):
    predictor = MultimodalSplitPredictor(tiny_model_config, tiny_training_config)
    with pytest.raises(RuntimeError):
        predictor.predict(small_split.validation)
    with pytest.raises(RuntimeError):
        predictor.evaluate(small_split.validation)


def test_predictor_for_scheme_factory(tiny_model_config, tiny_training_config):
    assert isinstance(
        predictor_for_scheme("img+rf", tiny_model_config, tiny_training_config),
        MultimodalSplitPredictor,
    )
    assert isinstance(
        predictor_for_scheme("img-only", tiny_model_config, tiny_training_config),
        ImageOnlyPredictor,
    )
    assert isinstance(
        predictor_for_scheme("RF_ONLY", tiny_model_config, tiny_training_config),
        RFOnlyPredictor,
    )
    with pytest.raises(ValueError):
        predictor_for_scheme("audio-only")


def test_fit_is_reproducible_with_same_seed(tiny_model_config, tiny_training_config, small_split):
    predictor_a = MultimodalSplitPredictor(tiny_model_config, tiny_training_config)
    predictor_b = MultimodalSplitPredictor(tiny_model_config, tiny_training_config)
    history_a = predictor_a.fit(small_split.train, small_split.validation)
    history_b = predictor_b.fit(small_split.train, small_split.validation)
    assert history_a.final_rmse_db == pytest.approx(history_b.final_rmse_db)
    assert np.allclose(
        predictor_a.predict(small_split.validation),
        predictor_b.predict(small_split.validation),
    )
