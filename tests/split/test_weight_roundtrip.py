"""Weight get/set and save/load round-trips for the two model halves.

The fleet hand-off and parallel averaging move UE weights between clients, so
a restored client must be *bit-identical* in its forward pass, not merely
close.
"""
import numpy as np
import pytest

from repro.split import ModelConfig, TrainingConfig
from repro.split.bs import BSServer
from repro.split.ue import UEClient


@pytest.fixture()
def image_batch(rng, tiny_model_config):
    return rng.random(
        (3, 4, tiny_model_config.image_height, tiny_model_config.image_width)
    )


def test_ue_get_set_weights_bit_identical_forward(
    tiny_model_config, tiny_training_config, image_batch
):
    source = UEClient(tiny_model_config, tiny_training_config, seed=1)
    target = UEClient(tiny_model_config, tiny_training_config, seed=2)
    assert not np.array_equal(
        source.forward(image_batch), target.forward(image_batch)
    )
    target.set_weights(source.get_weights())
    assert np.array_equal(source.forward(image_batch), target.forward(image_batch))


def test_ue_save_load_weights_bit_identical_forward(
    tmp_path, tiny_model_config, tiny_training_config, image_batch
):
    source = UEClient(tiny_model_config, tiny_training_config, seed=1)
    reference = source.forward(image_batch)
    path = tmp_path / "ue_weights.npz"
    source.save_weights(path)

    restored = UEClient(tiny_model_config, tiny_training_config, seed=99)
    restored.load_weights(path)
    assert np.array_equal(restored.forward(image_batch), reference)


def test_bs_get_set_weights_bit_identical_predict(
    rng, tiny_model_config, tiny_training_config
):
    features = rng.random((5, 4, tiny_model_config.image_feature_size))
    powers = rng.random((5, 4))
    source = BSServer(tiny_model_config, tiny_training_config, seed=3)
    target = BSServer(tiny_model_config, tiny_training_config, seed=4)
    target.set_weights(source.get_weights())
    assert np.array_equal(
        source.predict(features, powers), target.predict(features, powers)
    )


def test_bs_save_load_weights_round_trip(
    tmp_path, rng, tiny_model_config, tiny_training_config
):
    features = rng.random((5, 4, tiny_model_config.image_feature_size))
    powers = rng.random((5, 4))
    source = BSServer(tiny_model_config, tiny_training_config, seed=3)
    path = tmp_path / "bs_weights"
    source.save_weights(path)
    restored = BSServer(tiny_model_config, tiny_training_config, seed=7)
    restored.load_weights(path)
    assert np.array_equal(
        source.predict(features, powers), restored.predict(features, powers)
    )


def test_get_weights_returns_copies(tiny_model_config, tiny_training_config):
    client = UEClient(tiny_model_config, tiny_training_config, seed=1)
    state = client.get_weights()
    key = next(iter(state))
    state[key] += 1.0
    assert not np.array_equal(state[key], client.get_weights()[key])


def test_set_weights_shape_mismatch_raises(tiny_training_config):
    small = ModelConfig(
        image_height=12,
        image_width=12,
        pooling_height=12,
        pooling_width=12,
        cnn_channels=(2,),
    )
    large = ModelConfig(
        image_height=12,
        image_width=12,
        pooling_height=12,
        pooling_width=12,
        cnn_channels=(3,),
    )
    client = UEClient(small, tiny_training_config, seed=1)
    donor = UEClient(large, tiny_training_config, seed=1)
    with pytest.raises(ValueError):
        client.set_weights(donor.get_weights())


def test_set_weights_preserves_optimizer_binding(
    tiny_model_config, tiny_training_config, image_batch
):
    """The optimizer keeps stepping the same Parameter objects after a load."""
    client = UEClient(tiny_model_config, tiny_training_config, seed=1)
    donor = UEClient(tiny_model_config, tiny_training_config, seed=2)
    client.set_weights(donor.get_weights())
    before = client.get_weights()
    features = client.forward(image_batch)
    client.backward(np.ones_like(features))
    client.apply_update()
    after = client.get_weights()
    assert any(
        not np.array_equal(before[key], after[key]) for key in before
    ), "optimizer update had no effect after set_weights"
