"""Interrupt/resume tests for ``SplitTrainer.fit`` (bit-identical resume)."""
import dataclasses

import numpy as np
import pytest

from repro.split import Checkpoint, ExperimentConfig, ModelConfig, SplitTrainer, TrainingConfig

MAX_EPOCHS = 4


@pytest.fixture()
def config(tiny_model_config):
    return ExperimentConfig(
        model=tiny_model_config,
        training=TrainingConfig(
            batch_size=16, max_epochs=MAX_EPOCHS, steps_per_epoch=2, seed=5
        ),
    )


def records_of(history):
    return [dataclasses.asdict(record) for record in history.records]


def weights_of(trainer):
    state = dict(trainer.protocol.bs.get_weights())
    if trainer.protocol.ue is not None:
        state.update({f"ue.{k}": v for k, v in trainer.protocol.ue.get_weights().items()})
    return state


def test_resume_at_every_epoch_is_bit_identical(config, small_split, tmp_path):
    """Interrupting after each epoch and resuming reproduces the full run."""
    reference_trainer = SplitTrainer(config)
    reference = reference_trainer.fit(small_split.train, small_split.validation)
    assert len(reference.records) == MAX_EPOCHS
    reference_weights = weights_of(reference_trainer)

    for stop_after in range(1, MAX_EPOCHS):
        path = tmp_path / f"stop{stop_after}.npz"
        SplitTrainer(config).fit(
            small_split.train,
            small_split.validation,
            max_epochs=stop_after,
            checkpoint_path=path,
        )
        resumed_trainer = SplitTrainer(config)
        resumed = resumed_trainer.fit(
            small_split.train, small_split.validation, resume_from=path
        )
        assert records_of(resumed) == records_of(reference)
        assert resumed.total_elapsed_s == reference.total_elapsed_s
        assert dataclasses.asdict(resumed.communication) == dataclasses.asdict(
            reference.communication
        )
        restored = weights_of(resumed_trainer)
        for key, value in reference_weights.items():
            assert np.array_equal(value, restored[key]), (stop_after, key)


def test_resume_accepts_checkpoint_instance(config, small_split, tmp_path):
    path = tmp_path / "ckpt.npz"
    SplitTrainer(config).fit(
        small_split.train, small_split.validation, max_epochs=2, checkpoint_path=path
    )
    checkpoint = Checkpoint.load(path)
    resumed = SplitTrainer(config).fit(
        small_split.train, small_split.validation, resume_from=checkpoint
    )
    assert len(resumed.records) == MAX_EPOCHS


def test_completed_checkpoint_returns_history_without_training(
    config, small_split, tmp_path
):
    path = tmp_path / "full.npz"
    full = SplitTrainer(config).fit(
        small_split.train, small_split.validation, checkpoint_path=path
    )
    trainer = SplitTrainer(config)
    batch_rng_before = trainer._rng.bit_generator.state

    again = trainer.fit(
        small_split.train, small_split.validation, resume_from=path
    )
    assert records_of(again) == records_of(full)
    # The restored batch stream advanced past the whole run, proving the
    # trainer took the restore path rather than redrawing from scratch.
    assert trainer._rng.bit_generator.state != batch_rng_before
    # The restored trainer evaluates (weights + normalizer are in place).
    assert np.isfinite(trainer.evaluate(small_split.validation))


def test_resume_with_topk_codec_is_bit_identical(config, small_split, tmp_path):
    """The top-k error-feedback residuals ride in the checkpoint: a resumed
    run sees the same compensated tensors as the uninterrupted one."""
    topk = dataclasses.replace(
        config,
        model=dataclasses.replace(
            config.model, codec="topk", codec_topk_fraction=0.25
        ),
    )
    reference_trainer = SplitTrainer(topk)
    reference = reference_trainer.fit(small_split.train, small_split.validation)
    reference_weights = weights_of(reference_trainer)
    # The residual buffers are live run state by the end of the reference run.
    assert reference_trainer.protocol.codec.state_dict()["residuals"]

    for stop_after in range(1, MAX_EPOCHS):
        path = tmp_path / f"topk{stop_after}.npz"
        SplitTrainer(topk).fit(
            small_split.train,
            small_split.validation,
            max_epochs=stop_after,
            checkpoint_path=path,
        )
        resumed_trainer = SplitTrainer(topk)
        resumed = resumed_trainer.fit(
            small_split.train, small_split.validation, resume_from=path
        )
        assert records_of(resumed) == records_of(reference)
        assert resumed.total_elapsed_s == reference.total_elapsed_s
        restored = weights_of(resumed_trainer)
        for key, value in reference_weights.items():
            assert np.array_equal(value, restored[key]), (stop_after, key)
        reference_residuals = reference_trainer.protocol.codec.state_dict()
        resumed_residuals = resumed_trainer.protocol.codec.state_dict()
        for stream, residual in reference_residuals["residuals"].items():
            assert np.array_equal(
                residual, resumed_residuals["residuals"][stream]
            ), (stop_after, stream)


def test_checkpoint_rejects_mismatched_codec(config, small_split, tmp_path):
    path = tmp_path / "identity.npz"
    SplitTrainer(config).fit(
        small_split.train, small_split.validation, max_epochs=1, checkpoint_path=path
    )
    topk = dataclasses.replace(
        config, model=dataclasses.replace(config.model, codec="topk")
    )
    with pytest.raises(ValueError, match="scheme"):
        SplitTrainer(topk).fit(
            small_split.train, small_split.validation, resume_from=path
        )


def test_rf_only_trainer_checkpoints_without_arq(config, small_split, tmp_path):
    rf_only = dataclasses.replace(
        config, model=dataclasses.replace(config.model, use_image=False)
    )
    path = tmp_path / "rf.npz"
    SplitTrainer(rf_only).fit(
        small_split.train, small_split.validation, max_epochs=2, checkpoint_path=path
    )
    reference = SplitTrainer(rf_only).fit(small_split.train, small_split.validation)
    resumed = SplitTrainer(rf_only).fit(
        small_split.train, small_split.validation, resume_from=path
    )
    assert records_of(resumed) == records_of(reference)
    assert resumed.communication is None


def test_checkpoint_rejects_mismatched_scheme(config, small_split, tmp_path):
    path = tmp_path / "ckpt.npz"
    SplitTrainer(config).fit(
        small_split.train, small_split.validation, max_epochs=1, checkpoint_path=path
    )
    other = dataclasses.replace(
        config, model=dataclasses.replace(config.model, use_rf=False)
    )
    with pytest.raises(ValueError, match="scheme"):
        SplitTrainer(other).fit(
            small_split.train, small_split.validation, resume_from=path
        )


def test_checkpoint_rejects_wrong_kind(config, small_split, tmp_path):
    path = tmp_path / "ckpt.npz"
    SplitTrainer(config).fit(
        small_split.train, small_split.validation, max_epochs=1, checkpoint_path=path
    )
    checkpoint = Checkpoint.load(path)
    forged = dataclasses.replace(checkpoint, kind="fleet")
    with pytest.raises(ValueError, match="kind|resume"):
        SplitTrainer(config).fit(
            small_split.train, small_split.validation, resume_from=forged
        )


def test_checkpoint_every_controls_cadence(config, small_split, tmp_path):
    path = tmp_path / "sparse.npz"
    SplitTrainer(config).fit(
        small_split.train,
        small_split.validation,
        max_epochs=3,
        checkpoint_path=path,
        checkpoint_every=2,
    )
    # Last write happens at the final epoch regardless of cadence.
    assert Checkpoint.load(path).progress == 3
    with pytest.raises(ValueError, match="checkpoint_every"):
        SplitTrainer(config).fit(
            small_split.train, small_split.validation, checkpoint_every=0
        )


def test_missing_checkpoint_file_raises(config, small_split, tmp_path):
    with pytest.raises(FileNotFoundError):
        SplitTrainer(config).fit(
            small_split.train,
            small_split.validation,
            resume_from=tmp_path / "missing.npz",
        )
