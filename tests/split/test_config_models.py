"""Tests for the split-model configuration objects and model builders."""
import numpy as np
import pytest

from repro.split import (
    ExperimentConfig,
    ModelConfig,
    TrainingConfig,
    build_bs_rnn,
    build_pooling_compressor,
    build_ue_cnn,
    paper_model_configs,
)


def test_default_model_config_is_paper_one_pixel():
    config = ModelConfig()
    assert config.image_height == 40 and config.image_width == 40
    assert config.pooling_height == 40 and config.pooling_width == 40
    assert config.is_one_pixel
    assert config.image_feature_size == 1
    assert config.rnn_input_size == 2  # one pixel + RF power
    assert config.sequence_length == 4


def test_model_config_pooling_arithmetic():
    config = ModelConfig(pooling_height=4, pooling_width=4)
    assert config.feature_map_height == 10
    assert config.feature_map_width == 10
    assert config.image_feature_size == 100
    assert not config.is_one_pixel


def test_model_config_modality_flags():
    rf_only = ModelConfig(use_image=False)
    assert rf_only.image_feature_size == 0
    assert rf_only.rnn_input_size == 1
    img_only = ModelConfig(use_rf=False)
    assert img_only.rnn_input_size == 1
    with pytest.raises(ValueError):
        ModelConfig(use_image=False, use_rf=False)


def test_model_config_with_pooling_copy():
    base = ModelConfig()
    pooled = base.with_pooling(4)
    assert pooled.pooling_height == 4 and pooled.pooling_width == 4
    assert base.pooling_height == 40  # original unchanged
    rectangular = base.with_pooling((8, 10))
    assert rectangular.pooling_height == 8 and rectangular.pooling_width == 10


def test_model_config_describe():
    assert "1-pixel" in ModelConfig().describe()
    assert ModelConfig(use_image=False).describe() == "RF-only"
    assert "Img-only" in ModelConfig(use_rf=False).describe()
    assert "4x4" in ModelConfig(pooling_height=4, pooling_width=4).describe()


def test_model_config_validation():
    with pytest.raises(ValueError):
        ModelConfig(pooling_height=3)  # not a divisor of 40
    with pytest.raises(ValueError):
        ModelConfig(cnn_kernel_size=4)
    with pytest.raises(ValueError):
        ModelConfig(rnn_type="transformer")
    with pytest.raises(ValueError):
        ModelConfig(sequence_length=0)


def test_training_config_paper_defaults():
    config = TrainingConfig()
    assert config.learning_rate == pytest.approx(0.001)
    assert config.beta1 == pytest.approx(0.9)
    assert config.beta2 == pytest.approx(0.999)
    assert config.max_epochs == 100
    assert config.target_rmse_db == pytest.approx(2.7)
    assert config.compute_time_per_step_s == pytest.approx(
        config.ue_compute_time_s + config.bs_compute_time_s
    )


def test_training_config_validation():
    with pytest.raises(ValueError):
        TrainingConfig(batch_size=0)
    with pytest.raises(ValueError):
        TrainingConfig(learning_rate=-1.0)
    with pytest.raises(ValueError):
        TrainingConfig(beta1=1.0)
    with pytest.raises(ValueError):
        TrainingConfig(max_retransmissions=-2)
    with pytest.raises(ValueError):
        TrainingConfig(eval_batch_size=0)


def test_experiment_config_describe():
    assert "1-pixel" in ExperimentConfig().describe()


def test_paper_model_configs_cover_five_schemes():
    configs = paper_model_configs()
    assert len(configs) == 5
    assert configs["rf-only"].use_image is False
    assert configs["img-only-1pixel"].use_rf is False
    assert configs["img+rf-1pixel"].is_one_pixel
    assert configs["img+rf-4x4"].pooling_height == 4


# -- model builders ----------------------------------------------------------------


@pytest.fixture()
def small_config():
    return ModelConfig(
        image_height=12,
        image_width=12,
        pooling_height=12,
        pooling_width=12,
        cnn_channels=(3,),
        rnn_hidden_size=6,
        head_hidden_size=4,
    )


def test_ue_cnn_preserves_spatial_size(small_config):
    cnn = build_ue_cnn(small_config, seed=0)
    output = cnn.forward(np.random.default_rng(0).random((2, 1, 12, 12)))
    assert output.shape == (2, 1, 12, 12)
    assert output.min() >= 0.0 and output.max() <= 1.0  # sigmoid output image


def test_ue_cnn_requires_image_branch():
    with pytest.raises(ValueError):
        build_ue_cnn(ModelConfig(use_image=False))


def test_pooling_compressor_output_size(small_config):
    compressor = build_pooling_compressor(small_config)
    pooled = compressor.forward(np.random.default_rng(0).random((3, 1, 12, 12)))
    assert pooled.shape == (3, 1)
    finer = build_pooling_compressor(small_config.with_pooling(4))
    assert finer.forward(np.random.default_rng(0).random((3, 1, 12, 12))).shape == (3, 9)


def test_bs_rnn_output_shape(small_config):
    rnn = build_bs_rnn(small_config, seed=0)
    inputs = np.random.default_rng(0).random((5, 4, small_config.rnn_input_size))
    output = rnn.forward(inputs)
    assert output.shape == (5, 1)


@pytest.mark.parametrize("rnn_type", ["lstm", "gru", "simple"])
def test_bs_rnn_backends(small_config, rnn_type):
    from dataclasses import replace

    config = replace(small_config, rnn_type=rnn_type)
    rnn = build_bs_rnn(config, seed=0)
    inputs = np.random.default_rng(1).random((3, 4, config.rnn_input_size))
    assert rnn.forward(inputs).shape == (3, 1)


def test_bs_rnn_without_head_hidden(small_config):
    from dataclasses import replace

    config = replace(small_config, head_hidden_size=0)
    rnn = build_bs_rnn(config, seed=0)
    inputs = np.random.default_rng(1).random((3, 4, config.rnn_input_size))
    assert rnn.forward(inputs).shape == (3, 1)


def test_builders_deterministic_per_seed(small_config):
    a = build_ue_cnn(small_config, seed=5)
    b = build_ue_cnn(small_config, seed=5)
    for (_, pa), (_, pb) in zip(a.named_parameters(), b.named_parameters()):
        assert np.allclose(pa.value, pb.value)
