"""Property-based and unit tests for the cut-layer payload codecs."""
import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.channel import PayloadModel
from repro.split.codecs import (
    CODEC_NAMES,
    DOWNLINK_STREAM,
    UPLINK_STREAM,
    IdentityCodec,
    TopKCodec,
    UniformQuantizerCodec,
    codec_from_name,
    encode_decode_stacked,
)

TENSORS = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=12),
    elements=st.floats(
        min_value=-100.0, max_value=100.0, allow_nan=False, allow_infinity=False
    ),
)


# -- identity -------------------------------------------------------------------------


@given(TENSORS)
@settings(max_examples=60, deadline=None)
def test_identity_is_exact_and_full_width(values):
    codec = IdentityCodec(bits_per_value=32)
    decoded, bits = codec.encode_decode(values, UPLINK_STREAM)
    assert decoded is values
    assert bits == values.size * 32
    assert codec.preview(values) is values
    assert codec.state_dict() == {}


def test_identity_bits_match_payload_model():
    # The invariant the goldens rely on: identity sizing is exactly the
    # pre-codec PayloadModel arithmetic.
    payload = PayloadModel(pooling_height=2, pooling_width=2)
    batch = 16
    elements = payload.values_per_image * payload.sequence_length * batch
    codec = IdentityCodec(bits_per_value=payload.bits_per_value)
    assert codec.sized_payload_bits(elements) == payload.uplink_payload_bits(batch)


# -- uniform quantizer ----------------------------------------------------------------


@given(TENSORS, st.sampled_from([2, 4, 8]))
@settings(max_examples=80, deadline=None)
def test_quantizer_error_bounded_by_half_step(values, bits):
    codec = UniformQuantizerCodec(bits)
    decoded, payload_bits = codec.encode_decode(values, UPLINK_STREAM)
    low, high = float(values.min()), float(values.max())
    if high == low:
        np.testing.assert_array_equal(decoded, np.full_like(values, low))
    else:
        step = (high - low) / (2**bits - 1)
        assert np.abs(decoded - values).max() <= step / 2 + 1e-12 * abs(high - low)
    assert payload_bits == values.size * bits + 64
    assert decoded.shape == values.shape


@given(TENSORS)
@settings(max_examples=40, deadline=None)
def test_quantizer_preview_matches_encode_decode(values):
    codec = UniformQuantizerCodec(8)
    decoded, _ = codec.encode_decode(values, UPLINK_STREAM)
    np.testing.assert_array_equal(codec.preview(values), decoded)


def test_quantizer_preserves_range_endpoints():
    values = np.array([0.0, 0.3, 0.7, 1.0])
    decoded, _ = UniformQuantizerCodec(4).encode_decode(values, UPLINK_STREAM)
    assert decoded[0] == 0.0
    assert decoded[-1] == 1.0


# -- top-k with error feedback --------------------------------------------------------


@given(TENSORS, st.floats(min_value=0.01, max_value=1.0))
@settings(max_examples=80, deadline=None)
def test_topk_support_size_and_sized_bound(values, fraction):
    codec = TopKCodec(fraction=fraction)
    decoded, bits = codec.encode_decode(values, UPLINK_STREAM)
    k = codec.keep_count(values.size)
    assert np.count_nonzero(decoded) <= k
    # The data-dependent payload never exceeds the deterministic bound the
    # protocol uses to size the downlink before the gradient exists.
    assert bits <= codec.sized_payload_bits(values.size)
    assert decoded.shape == values.shape


@given(
    st.lists(
        hnp.arrays(
            dtype=np.float64,
            shape=(24,),
            elements=st.floats(
                min_value=-10.0,
                max_value=10.0,
                allow_nan=False,
                allow_infinity=False,
            ),
        ),
        min_size=1,
        max_size=8,
    )
)
@settings(max_examples=60, deadline=None)
def test_topk_error_feedback_telescopes(tensors):
    # Sum of decoded outputs == sum of inputs + (initial - final residual):
    # the per-step bias cancels over a run instead of accumulating.
    codec = TopKCodec(fraction=0.25)
    decoded_sum = np.zeros(24)
    for values in tensors:
        decoded, _ = codec.encode_decode(values, UPLINK_STREAM)
        decoded_sum += decoded
    final_residual = codec.state_dict()["residuals"][UPLINK_STREAM]
    np.testing.assert_allclose(
        decoded_sum + final_residual, np.sum(tensors, axis=0), atol=1e-9
    )


def test_topk_streams_have_independent_residuals():
    codec = TopKCodec(fraction=0.5)
    up = np.array([1.0, 0.1, 0.2, 3.0])
    down = np.array([-2.0, 0.5, 0.0, 0.4])
    codec.encode_decode(up, UPLINK_STREAM)
    codec.encode_decode(down, DOWNLINK_STREAM)
    residuals = codec.state_dict()["residuals"]
    assert set(residuals) == {UPLINK_STREAM, DOWNLINK_STREAM}
    assert not np.array_equal(residuals[UPLINK_STREAM], residuals[DOWNLINK_STREAM])


def test_topk_residual_resets_on_shape_change():
    codec = TopKCodec(fraction=0.5)
    codec.encode_decode(np.arange(8.0), UPLINK_STREAM)
    decoded, _ = codec.encode_decode(np.arange(4.0), UPLINK_STREAM)
    # A fresh (zero) residual: the short batch is plain top-k of its input.
    np.testing.assert_array_equal(decoded, TopKCodec(fraction=0.5).preview(np.arange(4.0)))


def test_topk_preview_does_not_advance_residual():
    codec = TopKCodec(fraction=0.5)
    codec.encode_decode(np.arange(8.0), UPLINK_STREAM)
    before = codec.state_dict()
    codec.preview(np.arange(8.0) * 3.0)
    after = codec.state_dict()
    np.testing.assert_array_equal(
        before["residuals"][UPLINK_STREAM], after["residuals"][UPLINK_STREAM]
    )


def test_topk_state_round_trip():
    codec = TopKCodec(fraction=0.25)
    rng = np.random.default_rng(3)
    for _ in range(3):
        codec.encode_decode(rng.normal(size=16), UPLINK_STREAM)
    state = codec.state_dict()

    restored = TopKCodec(fraction=0.25)
    restored.load_state_dict(state)
    probe = rng.normal(size=16)
    decoded_a, bits_a = codec.encode_decode(probe, UPLINK_STREAM)
    decoded_b, bits_b = restored.encode_decode(probe, UPLINK_STREAM)
    np.testing.assert_array_equal(decoded_a, decoded_b)
    assert bits_a == bits_b
    # The captured state is a snapshot, not a view of the live buffers.
    state["residuals"][UPLINK_STREAM][:] = 99.0
    decoded_c, _ = restored.encode_decode(probe, UPLINK_STREAM)
    assert not np.array_equal(decoded_c, np.full(16, 99.0))


# -- registry -------------------------------------------------------------------------


@pytest.mark.parametrize("name", CODEC_NAMES)
def test_registry_round_trip(name):
    codec = codec_from_name(name)
    assert codec.name == name
    values = np.linspace(0.0, 1.0, 32).reshape(4, 8)
    decoded, bits = codec.encode_decode(values, UPLINK_STREAM)
    assert decoded.shape == values.shape
    assert bits > 0


def test_registry_rejects_unknown_name():
    with pytest.raises(ValueError, match="unknown codec"):
        codec_from_name("gzip")


@pytest.mark.parametrize(
    "factory",
    [
        lambda: IdentityCodec(bits_per_value=0),
        lambda: UniformQuantizerCodec(0),
        lambda: TopKCodec(fraction=0.0),
        lambda: TopKCodec(fraction=1.5),
        lambda: TopKCodec(bits_per_value=-1),
    ],
)
def test_invalid_parameters_rejected(factory):
    with pytest.raises(ValueError):
        factory()


# -- stacked (fleet) encode/decode --------------------------------------------------


def _member_loop(codec_factory, values, stream):
    codecs = [codec_factory() for _ in values]
    decoded = np.empty_like(values)
    bits = np.empty(len(values))
    for member, codec in enumerate(codecs):
        decoded[member], bits[member] = codec.encode_decode(values[member], stream)
    return decoded, bits


@pytest.mark.parametrize(
    "codec_factory",
    [
        lambda: IdentityCodec(),
        lambda: UniformQuantizerCodec(8),
        lambda: UniformQuantizerCodec(4),
    ],
)
def test_stacked_homogeneous_matches_member_loop(codec_factory):
    rng = np.random.default_rng(6)
    values = rng.standard_normal((5, 3, 2, 4))
    values[2] = 1.25  # one constant member tensor (degenerate range)
    codecs = [codec_factory() for _ in range(5)]
    decoded, bits = encode_decode_stacked(codecs, values, UPLINK_STREAM)
    expected_decoded, expected_bits = _member_loop(
        codec_factory, values, UPLINK_STREAM
    )
    assert np.array_equal(decoded, expected_decoded)
    assert np.array_equal(bits, expected_bits)


def test_stacked_topk_advances_per_member_residuals():
    """Stateful codecs fall back to the member loop on the canonical objects."""
    rng = np.random.default_rng(9)
    stacked_codecs = [TopKCodec(fraction=0.25) for _ in range(3)]
    loop_codecs = [TopKCodec(fraction=0.25) for _ in range(3)]
    for _ in range(4):
        values = rng.standard_normal((3, 2, 8))
        decoded, bits = encode_decode_stacked(
            stacked_codecs, values, DOWNLINK_STREAM
        )
        for member, codec in enumerate(loop_codecs):
            expected_decoded, expected_bits = codec.encode_decode(
                values[member], DOWNLINK_STREAM
            )
            assert np.array_equal(decoded[member], expected_decoded)
            assert bits[member] == expected_bits
    for stacked_codec, loop_codec in zip(stacked_codecs, loop_codecs):
        assert np.array_equal(
            stacked_codec._residuals[DOWNLINK_STREAM],
            loop_codec._residuals[DOWNLINK_STREAM],
        )


def test_stacked_mixed_codecs_fall_back_to_member_loop():
    rng = np.random.default_rng(2)
    values = rng.standard_normal((2, 4, 4))
    codecs = [IdentityCodec(), UniformQuantizerCodec(8)]
    decoded, bits = encode_decode_stacked(codecs, values, UPLINK_STREAM)
    assert np.array_equal(decoded[0], values[0])
    expected, expected_bits = UniformQuantizerCodec(8).encode_decode(
        values[1], UPLINK_STREAM
    )
    assert np.array_equal(decoded[1], expected)
    assert bits[1] == expected_bits


def test_stacked_validates_member_count():
    with pytest.raises(ValueError):
        encode_decode_stacked([], np.zeros((0, 2)), UPLINK_STREAM)
    with pytest.raises(ValueError):
        encode_decode_stacked(
            [IdentityCodec()], np.zeros((2, 3)), UPLINK_STREAM
        )
