"""Test package."""
