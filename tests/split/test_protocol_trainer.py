"""Tests for the split training protocol, trainer and normalizer."""
from dataclasses import replace

import numpy as np
import pytest

from repro.channel import LinkParams, WirelessChannelParams
from repro.split import (
    ExperimentConfig,
    ModelConfig,
    PowerNormalizer,
    SplitTrainer,
    SplitTrainingProtocol,
    TrainingConfig,
)


@pytest.fixture()
def model_config():
    return ModelConfig(
        image_height=8,
        image_width=8,
        pooling_height=8,
        pooling_width=8,
        cnn_channels=(2,),
        rnn_hidden_size=6,
        head_hidden_size=0,
    )


@pytest.fixture()
def training_config():
    return TrainingConfig(batch_size=8, max_epochs=2, steps_per_epoch=2, seed=0)


@pytest.fixture()
def gen():
    return np.random.default_rng(0)


def make_batch(gen, batch=8, length=4, size=8):
    images = gen.random((batch, length, size, size))
    powers = gen.normal(size=(batch, length))
    targets = gen.normal(size=batch)
    return images, powers, targets


# -- normalizer --------------------------------------------------------------------


def test_normalizer_roundtrip(gen):
    values = gen.normal(loc=-40.0, scale=8.0, size=200)
    normalizer = PowerNormalizer.fit(values)
    normalized = normalizer.normalize(values)
    assert normalized.mean() == pytest.approx(0.0, abs=1e-9)
    assert normalized.std() == pytest.approx(1.0, abs=1e-9)
    assert np.allclose(normalizer.denormalize(normalized), values)


def test_normalizer_constant_input_uses_unit_std():
    normalizer = PowerNormalizer.fit(np.full(10, -30.0))
    assert normalizer.std_db == 1.0
    assert np.allclose(normalizer.normalize([-30.0]), 0.0)


def test_normalizer_validation():
    with pytest.raises(ValueError):
        PowerNormalizer(mean_dbm=0.0, std_db=0.0)
    with pytest.raises(ValueError):
        PowerNormalizer.fit()
    with pytest.raises(ValueError):
        PowerNormalizer.fit(np.array([]))


# -- protocol ----------------------------------------------------------------------


def test_protocol_training_step_multimodal(model_config, training_config, gen):
    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    images, powers, targets = make_batch(gen)
    result = protocol.training_step(images, powers, targets)
    assert result.updated
    assert np.isfinite(result.loss)
    assert result.communication is not None
    assert result.communication.success
    # Elapsed time includes both compute terms plus at least two slots.
    minimum = (
        training_config.ue_compute_time_s
        + training_config.bs_compute_time_s
        + 2 * 1e-3
    )
    assert result.elapsed_s >= minimum - 1e-12


def test_protocol_rf_only_has_no_communication(model_config, training_config, gen):
    config = ExperimentConfig(
        model=replace(model_config, use_image=False), training=training_config
    )
    protocol = SplitTrainingProtocol(config)
    assert protocol.ue is None and protocol.arq is None
    _, powers, targets = make_batch(gen)
    result = protocol.training_step(None, powers, targets)
    assert result.updated
    assert result.communication is None
    assert result.elapsed_s == pytest.approx(training_config.bs_compute_time_s)


def test_protocol_lost_step_when_payload_undecodable(model_config, training_config, gen):
    # Shrink the uplink bandwidth so even the one-pixel payload cannot be decoded.
    starved_channel = WirelessChannelParams(
        uplink=LinkParams(transmit_power_dbm=-40.0, bandwidth_hz=1e3),
        downlink=LinkParams(transmit_power_dbm=40.0, bandwidth_hz=100e6),
    )
    config = ExperimentConfig(
        model=model_config, training=training_config, channel=starved_channel
    )
    protocol = SplitTrainingProtocol(config)
    before = [p.value.copy() for p in protocol.bs.rnn.parameters()]
    images, powers, targets = make_batch(gen)
    result = protocol.training_step(images, powers, targets)
    assert not result.updated
    assert np.isnan(result.loss)
    after = [p.value for p in protocol.bs.rnn.parameters()]
    assert all(np.allclose(b, a) for b, a in zip(before, after))


def test_protocol_training_reduces_loss(model_config, gen):
    training = TrainingConfig(batch_size=16, max_epochs=1, steps_per_epoch=1, seed=1)
    protocol = SplitTrainingProtocol(ExperimentConfig(model=model_config, training=training))
    images, powers, targets = make_batch(gen, batch=16)
    first = protocol.training_step(images, powers, targets).loss
    losses = [protocol.training_step(images, powers, targets).loss for _ in range(40)]
    assert losses[-1] < first


def test_protocol_predict_shapes_and_modes(model_config, training_config, gen):
    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    images, powers, _ = make_batch(gen, batch=10)
    predictions = protocol.predict(images, powers, batch_size=4)
    assert predictions.shape == (10,)
    with pytest.raises(ValueError):
        protocol.predict(None, powers)
    with pytest.raises(ValueError):
        protocol.predict(images, None)


def test_protocol_predict_restores_prior_mode(model_config, training_config, gen):
    """predict() must not silently re-enter training mode from eval mode."""
    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    images, powers, _ = make_batch(gen, batch=6)

    assert protocol.training_mode  # protocols start in training mode
    protocol.predict(images, powers, batch_size=3)
    assert protocol.training_mode  # restored after predicting
    assert protocol.bs.rnn.training and protocol.ue.cnn.training

    protocol.eval()
    protocol.predict(images, powers, batch_size=3)
    assert not protocol.training_mode  # eval mode survives predict()
    assert not protocol.bs.rnn.training and not protocol.ue.cnn.training

    protocol.train()
    assert protocol.training_mode


def test_protocol_predict_independent_of_batch_size(
    model_config, training_config, gen
):
    """eval_batch_size is a throughput knob only: predictions are identical."""
    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    images, powers, _ = make_batch(gen, batch=10)
    full = protocol.predict(images, powers, batch_size=10)
    chunked = protocol.predict(images, powers, batch_size=3)
    assert np.allclose(full, chunked)


def test_protocol_num_parameters_counts_both_halves(model_config, training_config):
    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    assert (
        protocol.num_parameters()
        == protocol.ue.num_parameters() + protocol.bs.num_parameters()
    )


# -- trainer ------------------------------------------------------------------------


def test_trainer_fit_records_learning_curve(tiny_experiment_config, small_split):
    trainer = SplitTrainer(tiny_experiment_config)
    history = trainer.fit(small_split.train, small_split.validation)
    assert len(history.records) >= 1
    assert history.records[0].epoch == 1
    assert history.total_elapsed_s > 0.0
    assert np.all(np.diff(history.elapsed_times_s) > 0)
    assert np.isfinite(history.final_rmse_db)
    assert history.best_rmse_db <= history.records[0].validation_rmse_db + 1e-9
    assert history.communication is not None
    assert history.communication.steps == sum(r.steps - r.lost_steps for r in history.records) + sum(r.lost_steps for r in history.records)


def test_trainer_second_fit_does_not_mutate_first_history(
    tiny_experiment_config, small_split
):
    """Each fit() gets its own communication snapshot, reset at fit start."""
    trainer = SplitTrainer(tiny_experiment_config)
    first = trainer.fit(small_split.train, small_split.validation)
    first_steps = first.communication.steps
    first_slots = first.communication.uplink_slots
    assert first_steps > 0

    second = trainer.fit(small_split.train, small_split.validation)
    # The first run's history must be untouched by the second fit ...
    assert first.communication.steps == first_steps
    assert first.communication.uplink_slots == first_slots
    # ... and the second run's statistics start from zero, not accumulate.
    expected_steps = sum(r.steps for r in second.records)
    assert second.communication.steps == expected_steps
    assert second.communication is not first.communication


def test_trainer_history_communication_is_a_snapshot(
    tiny_experiment_config, small_split
):
    trainer = SplitTrainer(tiny_experiment_config)
    history = trainer.fit(small_split.train, small_split.validation)
    live = trainer.protocol.arq.statistics
    assert history.communication is not live
    live_steps = live.steps
    trainer.protocol.arq.exchange(1000.0, 1000.0)
    assert trainer.protocol.arq.statistics.steps == live_steps + 1
    assert history.communication.steps == live_steps


def test_trainer_predict_dbm_scale(tiny_experiment_config, small_split):
    trainer = SplitTrainer(tiny_experiment_config)
    trainer.fit(small_split.train, small_split.validation)
    predictions = trainer.predict_dbm(small_split.validation)
    assert predictions.shape == (len(small_split.validation),)
    # Predictions should land in a plausible dBm range, not normalized units.
    assert np.all(predictions < 0.0)
    assert np.all(predictions > -90.0)


def test_trainer_early_stop_on_loose_target(tiny_model_config, small_split):
    training = TrainingConfig(
        batch_size=16, max_epochs=50, steps_per_epoch=1, target_rmse_db=50.0, seed=0
    )
    trainer = SplitTrainer(ExperimentConfig(model=tiny_model_config, training=training))
    history = trainer.fit(small_split.train, small_split.validation)
    assert history.reached_target
    assert len(history.records) == 1


def test_trainer_respects_max_epochs_override(tiny_experiment_config, small_split):
    trainer = SplitTrainer(tiny_experiment_config)
    history = trainer.fit(small_split.train, small_split.validation, max_epochs=1)
    assert len(history.records) == 1


def test_trainer_evaluate_before_fit_raises(tiny_experiment_config, small_split):
    trainer = SplitTrainer(tiny_experiment_config)
    with pytest.raises(RuntimeError):
        trainer.predict_dbm(small_split.validation)


def test_history_time_to_reach():
    from repro.split.trainer import EpochRecord, TrainingHistory

    history = TrainingHistory(scheme="test")
    history.records = [
        EpochRecord(1, 1.0, 0.5, 6.0, 2, 0),
        EpochRecord(2, 2.0, 0.4, 4.0, 2, 0),
        EpochRecord(3, 3.5, 0.3, 3.0, 2, 0),
    ]
    assert history.time_to_reach_db(4.5) == pytest.approx(2.0)
    assert history.time_to_reach_db(2.0) == float("inf")
    assert np.allclose(history.validation_rmse_curve_db, [6.0, 4.0, 3.0])


# -- payload codecs in the protocol -------------------------------------------------


def test_begin_step_rejects_mismatched_cut_tensor(model_config, training_config, gen):
    """The runtime payload-accounting assertion: a cut tensor whose element
    count diverges from the PayloadModel sizing must fail loudly, not ship
    mis-sized payloads."""
    from repro.channel import PayloadModel

    protocol = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    # Simulate the accounting drifting out of sync with the architecture: a
    # payload model sized for a different pooling region.
    protocol.payload_model = PayloadModel(
        image_height=8, image_width=8, pooling_height=4, pooling_width=4
    )
    images, _, _ = make_batch(gen)
    with pytest.raises(ValueError, match="payload"):
        protocol.begin_step(images)


@pytest.mark.parametrize("codec", ["uint8", "int4", "topk"])
def test_codec_shrinks_phase_payloads(codec, model_config, training_config, gen):
    identity = SplitTrainingProtocol(
        ExperimentConfig(model=model_config, training=training_config)
    )
    compressed = SplitTrainingProtocol(
        ExperimentConfig(
            model=replace(model_config, codec=codec), training=training_config
        )
    )
    images, _, _ = make_batch(gen)
    base = identity.begin_step(images)
    phase = compressed.begin_step(images)
    assert phase.uplink_payload_bits < base.uplink_payload_bits
    assert phase.downlink_payload_bits < base.downlink_payload_bits
    # The BS sees the decoded tensor, same shape as the raw activations.
    assert phase.features.shape == base.features.shape


def test_codec_step_trains_and_reports_encoded_bits(
    model_config, training_config, gen
):
    protocol = SplitTrainingProtocol(
        ExperimentConfig(
            model=replace(model_config, codec="uint8"), training=training_config
        )
    )
    images, powers, targets = make_batch(gen)
    result = protocol.training_step(images, powers, targets)
    assert result.updated
    assert np.isfinite(result.loss)


def test_lost_step_does_not_advance_downlink_residual(model_config, gen):
    """Error feedback is a delivered-gradient mechanism: a lost exchange must
    not fold the never-transmitted gradient into the downlink residual."""
    starved_channel = WirelessChannelParams(
        uplink=LinkParams(transmit_power_dbm=-40.0, bandwidth_hz=1e3),
        downlink=LinkParams(transmit_power_dbm=40.0, bandwidth_hz=100e6),
    )
    training = TrainingConfig(batch_size=8, max_epochs=1, steps_per_epoch=1, seed=1)
    config = ExperimentConfig(
        model=replace(model_config, codec="topk"),
        training=training,
        channel=starved_channel,
    )
    protocol = SplitTrainingProtocol(config)
    images, powers, targets = make_batch(gen)
    result = protocol.training_step(images, powers, targets)
    assert not result.updated
    residuals = protocol.codec.state_dict()["residuals"]
    assert "downlink" not in residuals
