"""Tests for the multidimensional scaling implementations."""
import numpy as np
import pytest

from repro.privacy import SmacofMDS, classical_mds, double_center, pairwise_distances, stress


@pytest.fixture()
def gen():
    return np.random.default_rng(19)


def test_pairwise_distances_known_values():
    points = np.array([[0.0, 0.0], [3.0, 4.0], [0.0, 4.0]])
    distances = pairwise_distances(points)
    assert distances.shape == (3, 3)
    assert np.allclose(np.diag(distances), 0.0)
    assert distances[0, 1] == pytest.approx(5.0)
    assert distances[0, 2] == pytest.approx(4.0)
    assert np.allclose(distances, distances.T)


def test_pairwise_distances_validation():
    with pytest.raises(ValueError):
        pairwise_distances(np.zeros(5))


def test_double_center_rows_and_columns_sum_to_zero(gen):
    points = gen.normal(size=(6, 3))
    squared = pairwise_distances(points) ** 2
    gram = double_center(squared)
    assert np.allclose(gram.sum(axis=0), 0.0, atol=1e-9)
    assert np.allclose(gram.sum(axis=1), 0.0, atol=1e-9)


def test_classical_mds_recovers_planar_configuration(gen):
    # Points genuinely in 2-D: classical MDS must reproduce their distances.
    points = gen.normal(size=(10, 2))
    distances = pairwise_distances(points)
    embedding, eigenvalues = classical_mds(distances, n_components=2)
    assert embedding.shape == (10, 2)
    assert np.allclose(pairwise_distances(embedding), distances, atol=1e-6)
    assert eigenvalues[0] > 0


def test_classical_mds_eigenvalues_sorted(gen):
    points = gen.normal(size=(8, 5))
    _, eigenvalues = classical_mds(pairwise_distances(points), n_components=3)
    assert np.all(np.diff(eigenvalues) <= 1e-9)


def test_classical_mds_validation(gen):
    distances = pairwise_distances(gen.normal(size=(5, 2)))
    with pytest.raises(ValueError):
        classical_mds(distances, n_components=0)
    with pytest.raises(ValueError):
        classical_mds(distances, n_components=9)
    with pytest.raises(ValueError):
        classical_mds(np.ones((3, 4)))
    asymmetric = distances.copy()
    asymmetric[0, 1] += 1.0
    with pytest.raises(ValueError):
        classical_mds(asymmetric)


def test_stress_zero_for_exact_embedding(gen):
    points = gen.normal(size=(7, 2))
    distances = pairwise_distances(points)
    assert stress(distances, points) == pytest.approx(0.0, abs=1e-12)


def test_stress_positive_for_wrong_embedding(gen):
    points = gen.normal(size=(7, 2))
    distances = pairwise_distances(points)
    assert stress(distances, gen.normal(size=(7, 2))) > 0.01


def test_smacof_reduces_stress_vs_random(gen):
    points = gen.normal(size=(12, 4))
    distances = pairwise_distances(points)
    random_start = gen.normal(size=(12, 2))
    initial_stress = stress(distances, random_start)
    mds = SmacofMDS(n_components=2, max_iterations=200, seed=0)
    embedding, final_stress = mds.fit(distances, initial=random_start)
    assert embedding.shape == (12, 2)
    assert final_stress < initial_stress


def test_smacof_near_perfect_for_intrinsically_2d(gen):
    points = gen.normal(size=(15, 2))
    distances = pairwise_distances(points)
    _, final_stress = SmacofMDS(n_components=2, seed=0).fit(distances)
    assert final_stress < 1e-3


def test_smacof_validation(gen):
    with pytest.raises(ValueError):
        SmacofMDS(n_components=0)
    with pytest.raises(ValueError):
        SmacofMDS(max_iterations=0)
    mds = SmacofMDS()
    with pytest.raises(ValueError):
        mds.fit(np.ones((3, 4)))
    distances = pairwise_distances(gen.normal(size=(5, 2)))
    with pytest.raises(ValueError):
        mds.fit(distances, initial=np.zeros((4, 2)))
