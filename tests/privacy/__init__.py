"""Test package."""
