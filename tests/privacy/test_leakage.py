"""Tests for the privacy-leakage metric."""
import numpy as np
import pytest

from repro.privacy import (
    PrivacyLeakageEvaluator,
    correlation_leakage,
    leakage_for_pooling,
    upsample_feature_maps,
)
from repro.split import ModelConfig, UEClient


@pytest.fixture()
def gen():
    return np.random.default_rng(29)


def pool(images, size):
    count, height, width = images.shape
    return images.reshape(count, height // size, size, width // size, size).mean(axis=(2, 4))


def test_upsample_feature_maps_shapes_and_values(gen):
    maps = gen.random((3, 2, 2))
    upsampled = upsample_feature_maps(maps, (8, 8))
    assert upsampled.shape == (3, 8, 8)
    assert np.allclose(upsampled[:, :4, :4], maps[:, :1, :1].repeat(4, 1).repeat(4, 2))


def test_upsample_validation(gen):
    with pytest.raises(ValueError):
        upsample_feature_maps(gen.random((3, 3, 3)), (8, 8))
    with pytest.raises(ValueError):
        upsample_feature_maps(gen.random((3, 3)), (6, 6))


def test_identity_representation_has_high_leakage(gen):
    images = gen.random((30, 8, 8))
    evaluator = PrivacyLeakageEvaluator(seed=0)
    result = evaluator.evaluate(images, images.copy())
    assert result.leakage > 0.9
    assert result.num_samples == 30
    assert result.per_sample_similarity.shape == (30,)


def test_constant_representation_has_low_leakage(gen):
    images = gen.random((30, 8, 8))
    constant = np.ones((30, 1, 1)) * 0.5
    evaluator = PrivacyLeakageEvaluator(seed=0)
    result = evaluator.evaluate(images, constant)
    assert result.leakage < 0.6


def test_leakage_decreases_with_pooling_size(gen, small_dataset):
    # Use frames with actual content (pedestrians in view); long stretches of
    # the empty corridor are identical images and carry no private information.
    interesting = np.flatnonzero(small_dataset.line_of_sight_blocked)[:60]
    assert len(interesting) >= 10
    images = small_dataset.images[interesting]
    evaluator = PrivacyLeakageEvaluator(seed=0)
    leakages = []
    for size in (1, 2, 6, 12):
        pooled = pool(images, size)
        leakages.append(evaluator.evaluate(images, pooled).leakage)
    tolerance = 1e-6
    assert leakages[0] >= leakages[1] - tolerance
    assert leakages[1] >= leakages[2] - tolerance
    assert leakages[2] >= leakages[3] - tolerance
    assert leakages[0] > leakages[-1]


def test_leakage_in_unit_interval(gen):
    images = gen.random((25, 6, 6))
    noise = gen.random((25, 6, 6))
    result = PrivacyLeakageEvaluator(seed=0).evaluate(images, noise)
    assert 0.0 <= result.leakage <= 1.0


def test_leakage_subsampling_cap(gen):
    images = gen.random((100, 6, 6))
    evaluator = PrivacyLeakageEvaluator(max_samples=20, seed=0)
    result = evaluator.evaluate(images, images)
    assert result.num_samples == 20


def test_leakage_validation(gen):
    evaluator = PrivacyLeakageEvaluator(seed=0)
    with pytest.raises(ValueError):
        evaluator.evaluate(gen.random((5, 4, 4)), gen.random((4, 4, 4)))
    with pytest.raises(ValueError):
        evaluator.evaluate(gen.random((1, 4, 4)), gen.random((1, 4, 4)))
    with pytest.raises(ValueError):
        PrivacyLeakageEvaluator(max_samples=1)
    with pytest.raises(ValueError):
        PrivacyLeakageEvaluator(n_components=0)


def test_correlation_leakage_bounds_and_identity(gen):
    images = gen.random((20, 6, 6))
    assert correlation_leakage(images, images) == pytest.approx(1.0)
    constant = np.full((20, 1, 1), 0.3)
    assert correlation_leakage(images, constant) == pytest.approx(0.0)
    value = correlation_leakage(images, pool(images, 2))
    assert 0.0 <= value <= 1.0


def test_leakage_for_pooling_helper(small_dataset):
    images = small_dataset.images[:60]
    fine = leakage_for_pooling(images, images, pooling=1)
    coarse = leakage_for_pooling(images, images, pooling=12)
    assert fine.leakage >= coarse.leakage
    with pytest.raises(ValueError):
        leakage_for_pooling(images, images, pooling=5)


def test_leakage_with_ue_client(small_dataset):
    """End-to-end: the representation actually transmitted by a UE client.

    With an untrained CNN at the tiny 12x12 test resolution the relative
    ordering between pooling sizes is not guaranteed (the random filters
    inject high-frequency noise that pooling partially removes), so this test
    only checks the well-defined bounds: every leakage lies in [0, 1] and no
    transmitted representation leaks more than the raw image itself.
    """
    interesting = np.flatnonzero(small_dataset.line_of_sight_blocked)[:50]
    images = small_dataset.images[interesting]
    config = ModelConfig(
        image_height=12, image_width=12, pooling_height=1, pooling_width=1,
        cnn_channels=(2,),
    )
    evaluator = PrivacyLeakageEvaluator(seed=0)
    identity = evaluator.evaluate(images, images).leakage
    fine_client = UEClient(config, seed=0)
    coarse_client = UEClient(config.with_pooling(12), seed=0)
    fine = evaluator.evaluate(images, fine_client.compressed_images(images))
    coarse = evaluator.evaluate(images, coarse_client.compressed_images(images))
    for value in (fine.leakage, coarse.leakage):
        assert 0.0 <= value <= identity + 1e-9
    assert identity > 0.9
