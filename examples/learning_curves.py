"""Reproduce Fig. 3a: learning curves of the five schemes.

Trains Img+RF (one-pixel), Img+RF (small pooling), Img-only (both poolings)
and RF-only, tracking the validation RMSE against the *simulated* elapsed
training time, which charges each SGD step its computation time plus the
transmission time of the cut-layer payloads over the wireless SL link.

Run with:  python examples/learning_curves.py            (fast scale)
           REPRO_SCALE=paper python examples/learning_curves.py   (full scale)
"""
from __future__ import annotations

import os

from repro.experiments import ExperimentScale, run_fig3a


def main() -> None:
    scale_name = os.environ.get("REPRO_SCALE", "fast").lower()
    scale = (
        ExperimentScale.paper() if scale_name == "paper" else ExperimentScale.fast()
    )
    print(
        f"Running the Fig. 3a comparison at {scale_name} scale "
        f"({scale.num_samples} samples, {scale.max_epochs} epochs) ..."
    )
    result = run_fig3a(scale)

    print("\nFinal comparison:\n")
    print(result.format_table())
    print(f"\nBest scheme: {result.best_scheme()}")

    print("\nLearning curves (validation RMSE in dB vs simulated elapsed time):\n")
    for name, history in result.histories.items():
        points = ", ".join(
            f"({record.elapsed_s:.1f}s, {record.validation_rmse_db:.2f})"
            for record in history.records[:: max(1, len(history.records) // 8)]
        )
        print(f"  {name:<22s} {points}")


if __name__ == "__main__":
    main()
