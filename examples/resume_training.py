"""Checkpoint, kill and resume a split-learning run — bit-identically.

Every trainer in the library persists its complete run state at epoch
granularity: model weights on both sides of the cut layer, both Adam
optimizers (moments + step counts), the minibatch-sampling RNG stream, the
ARQ sessions' fading RNG streams and aggregate statistics, the fitted power
normalizer, and the learning curve so far.  Resuming from a checkpoint draws
exactly the random values the uninterrupted run would have drawn, so the
resulting history and final weights are *bit-identical* to never having
stopped.

This script

1. trains a reference run to completion,
2. trains a second run that is "killed" after a few epochs (simulated by a
   small epoch budget) while writing a checkpoint file,
3. resumes a third, fresh trainer from that checkpoint, and
4. verifies the resumed trajectory and weights equal the reference exactly.

It also shows the sweep-level counterpart: re-running an interrupted sweep
with ``resume=True`` skips completed cells (see
``python -m repro.experiments.sweep --help`` for the CLI flags).

Run with:  python examples/resume_training.py
"""
from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.experiments import ExperimentScale, prepare_split
from repro.split import ExperimentConfig, SplitTrainer


def make_trainer(scale: ExperimentScale) -> SplitTrainer:
    return SplitTrainer(
        ExperimentConfig.for_scenario(
            scale.scenario,
            model=scale.base_model_config(),
            training=scale.training_config(),
        )
    )


def main() -> None:
    scale = ExperimentScale.smoke()
    split = prepare_split(scale)
    budget = 4

    print("1) reference run (uninterrupted) ...")
    reference_trainer = make_trainer(scale)
    reference = reference_trainer.fit(
        split.train, split.validation, max_epochs=budget
    )
    for record in reference.records:
        print(
            f"   epoch {record.epoch}: val RMSE {record.validation_rmse_db:.3f} dB"
            f" @ {record.elapsed_s:.2f} s simulated"
        )

    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "run.npz"

        print("\n2) interrupted run: killed after epoch 2, checkpoint on disk ...")
        make_trainer(scale).fit(
            split.train,
            split.validation,
            max_epochs=2,  # the "kill": the process dies after epoch 2
            checkpoint_path=checkpoint,
        )
        print(f"   checkpoint written to {checkpoint.name}")

        print("\n3) fresh process: resume from the checkpoint ...")
        resumed_trainer = make_trainer(scale)
        resumed = resumed_trainer.fit(
            split.train,
            split.validation,
            max_epochs=budget,
            resume_from=checkpoint,
        )
        for record in resumed.records[2:]:
            print(
                f"   epoch {record.epoch}: val RMSE "
                f"{record.validation_rmse_db:.3f} dB (resumed)"
            )

    print("\n4) verify bit-identical trajectories ...")
    curves_equal = np.array_equal(
        reference.validation_rmse_curve_db, resumed.validation_rmse_curve_db
    )
    weights_equal = all(
        np.array_equal(value, resumed_trainer.protocol.bs.get_weights()[key])
        for key, value in reference_trainer.protocol.bs.get_weights().items()
    ) and all(
        np.array_equal(value, resumed_trainer.protocol.ue.get_weights()[key])
        for key, value in reference_trainer.protocol.ue.get_weights().items()
    )
    print(f"   learning curves identical: {curves_equal}")
    print(f"   final weights identical:   {weights_equal}")
    assert curves_equal and weights_equal

    print(
        "\nSweep-level resume works the same way: run the sweep CLI with\n"
        "--output sweep.json --checkpoint-dir ckpts, kill it, and re-run with\n"
        "--resume: completed cells are skipped and in-flight training jobs\n"
        "continue from their last epoch checkpoint."
    )


if __name__ == "__main__":
    main()
