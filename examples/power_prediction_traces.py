"""Reproduce Fig. 3b: predicted received power vs ground truth over time.

Trains the Img+RF, Img-only and RF-only predictors, selects a validation
window containing a line-of-sight blockage event, and prints the predicted
traces next to the ground truth as an ASCII table (and per-scheme RMSE, both
overall and restricted to the transition regions around power drops).

Run with:  python examples/power_prediction_traces.py
"""
from __future__ import annotations

from repro.experiments import ExperimentScale, run_fig3b


def main() -> None:
    scale = ExperimentScale.fast()
    print(
        f"Training Img+RF / Img-only / RF-only at fast scale "
        f"({scale.num_samples} samples, {scale.image_size}x{scale.image_size} images) ..."
    )
    result = run_fig3b(scale)

    print("\nPer-scheme accuracy over the plotted window:\n")
    print(result.format_table())
    print(f"\nClosest to the ground truth overall: {result.best_overall()}")

    print("\nTrace (every 5th sample of the plotted window):\n")
    names = list(result.predictions)
    header = f"{'time (s)':>9s} {'truth':>8s} " + " ".join(
        f"{name:>10s}" for name in names
    )
    print(header)
    for index in range(0, len(result.times_s), 5):
        row = f"{result.times_s[index]:>9.2f} {result.ground_truth_dbm[index]:>8.1f} "
        row += " ".join(
            f"{result.predictions[name].predictions_dbm[index]:>10.1f}"
            for name in names
        )
        marker = "  <- transition" if result.transition_mask[index] else ""
        print(row + marker)


if __name__ == "__main__":
    main()
