"""Train a fleet of UEs over one shared mmWave medium.

The paper's protocol is one UE against one BS.  The fleet subsystem scales it
out: N UE clients with independent, placement-jittered channels share a
single BS and a single slotted medium.  Two training modes are available:

* ``rotation`` — classic split learning: the logical UE model is handed
  client-to-client and each client trains alone during its turn;
* ``parallel_average`` — splitfed-style: every client steps each round, a
  medium scheduler (TDMA round-robin or proportional-to-payload) serializes
  the cut-layer payloads, the shared BS RNN steps once on the concatenated
  batch, and client CNN weights are averaged after every round.

This script trains fleets of 1, 2 and 4 UEs in both modes at the fast scale
and prints the learning-curve endpoints plus medium-occupancy accounting —
the same numbers the ``fig_fleet_scaling`` CLI writes to its JSON artifact:

    python -m repro.experiments.fig_fleet_scaling --scale fast --ues 1 2 4

Run with:  python examples/fleet_scaling.py
"""
from __future__ import annotations

from repro.experiments import ExperimentScale, prepare_split, run_fleet_scaling
from repro.fleet import FleetConfig, FleetTrainer
from repro.split import ExperimentConfig


def main() -> None:
    scale = ExperimentScale.fast()
    split = prepare_split(scale)

    print("Fleet scaling at fast scale (N = 1, 2, 4; both modes) ...\n")
    result = run_fleet_scaling(
        scale=scale, split=split, ue_counts=(1, 2, 4), max_rounds=10
    )
    print(result.format_table())

    # A fleet of one reproduces the single-UE experiments draw for draw; the
    # interesting row is the parallel-average fleet, whose rounds amortize
    # compute across clients and pay only the serialized communication.
    history = result.history("parallel_average", 4)
    print(
        f"\nparallel_average N=4: {len(history.records)} rounds, "
        f"medium busy {history.medium_busy_s:.3f}s of "
        f"{history.total_elapsed_s:.3f}s simulated "
        f"({history.medium_occupancy:.0%} occupancy)"
    )
    merged = history.communication
    print(
        f"merged fleet communication: {merged.steps} exchanges, "
        f"{merged.mean_slots_per_step:.2f} slots/step, "
        f"{merged.mean_step_latency_s * 1e3:.2f} ms mean latency"
    )

    # The proportional scheduler matters once payloads are heterogeneous;
    # with a homogeneous fleet it degenerates to round-robin TDMA.
    trainer = FleetTrainer(
        ExperimentConfig.for_scenario(
            scale.scenario,
            model=scale.base_model_config(),
            training=scale.training_config(),
        ),
        FleetConfig(num_ues=4, mode="parallel_average", scheduler="proportional"),
    )
    proportional = trainer.fit(split.train, split.validation, max_rounds=10)
    print(
        f"\nproportional scheduler, N=4: final RMSE "
        f"{proportional.final_rmse_db:.2f} dB, "
        f"occupancy {proportional.medium_occupancy:.0%}"
    )


if __name__ == "__main__":
    main()
