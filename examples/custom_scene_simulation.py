"""Build a custom corridor scene and inspect the simulated measurements.

This example exercises the substrate layers directly (no learning): it builds
a corridor with a deterministic pedestrian schedule, renders depth frames,
derives the 60 GHz received-power trace with the knife-edge blockage model,
and prints a frame-by-frame summary around a blockage event.  It also shows
how the split-learning uplink behaves for two different pooling sizes.

Run with:  python examples/custom_scene_simulation.py
"""
from __future__ import annotations

import numpy as np

from repro.channel import PAPER_CHANNEL_PARAMS, PayloadModel, WirelessLink
from repro.mmwave import KnifeEdgeBlockageModel, ReceivedPowerModel
from repro.scene import CorridorScene, DepthCameraIntrinsics, periodic_crossing_traffic


def main() -> None:
    frame_interval = 0.033
    pedestrians = periodic_crossing_traffic(
        duration_s=12.0, period_s=4.0, first_crossing_s=1.5, speed_mps=1.2
    )
    scene = CorridorScene(
        link_distance_m=4.0,
        pedestrians=pedestrians,
        frame_interval_s=frame_interval,
        camera_intrinsics=DepthCameraIntrinsics(width=24, height=24),
    )
    power_model = ReceivedPowerModel.with_default_randomness(
        seed=3, blockage_model=KnifeEdgeBlockageModel()
    )

    frames = list(scene.frames(int(12.0 / frame_interval)))
    powers = power_model.power_trace_dbm(scene, frames)

    print("Frame-by-frame view around the first blockage event:\n")
    blocked = np.array([frame.line_of_sight_blocked for frame in frames])
    first_blocked = int(np.argmax(blocked)) if blocked.any() else len(frames) // 2
    print(f"{'frame':>6s} {'time (s)':>9s} {'power (dBm)':>12s} {'LoS blocked':>12s} {'min depth':>10s}")
    for index in range(max(0, first_blocked - 8), min(len(frames), first_blocked + 8)):
        frame = frames[index]
        print(
            f"{index:>6d} {frame.time_s:>9.2f} {powers[index]:>12.1f} "
            f"{str(frame.line_of_sight_blocked):>12s} {frame.depth_image.min():>10.2f}"
        )

    print("\nSplit-learning uplink behaviour for two pooling configurations:\n")
    for pooling in (4, 24):
        payload = PayloadModel(
            image_height=24, image_width=24, pooling_height=pooling, pooling_width=pooling
        )
        bits = payload.uplink_payload_bits(batch_size=64)
        link = WirelessLink(params=PAPER_CHANNEL_PARAMS, direction="uplink", seed=1)
        outcome = link.transmit(bits)
        print(
            f"  pooling {pooling:>2d}x{pooling:<2d}: payload {bits/1e3:8.1f} kbit, "
            f"per-slot success prob {link.success_probability(bits):6.4f}, "
            f"simulated transmission {outcome.elapsed_s*1e3:6.1f} ms "
            f"({outcome.slots_used} slot(s))"
        )


if __name__ == "__main__":
    main()
