"""Quickstart: train the multimodal split-learning predictor end to end.

This script walks through the full pipeline on a small synthetic dataset:

1. generate a synthetic replica of the paper's depth-image / received-power
   dataset (a corridor with pedestrians crossing a 60 GHz link);
2. build sliding-window sequences (L = 4 frames, 120 ms prediction horizon);
3. train the proposed Img+RF split model with one-pixel pooling and the two
   baselines (Img-only, RF-only);
4. report validation RMSE and the simulated training wall-clock time, which
   includes the cut-layer transmissions over the wireless SL link.

Run with:  python examples/quickstart.py
"""
from __future__ import annotations

from repro.dataset import build_sequences, generate_small_dataset, temporal_split
from repro.split import (
    ImageOnlyPredictor,
    ModelConfig,
    MultimodalSplitPredictor,
    RFOnlyPredictor,
    TrainingConfig,
)


def main() -> None:
    image_size = 20
    print("Generating a small synthetic mmWave + depth-camera dataset ...")
    dataset = generate_small_dataset(num_samples=700, image_size=image_size, seed=7)
    print(
        f"  {len(dataset)} samples, {dataset.blockage_fraction:.0%} of frames "
        f"with a blocked line of sight"
    )

    sequences = build_sequences(dataset)
    split = temporal_split(sequences)
    print(f"  {len(split.train)} training windows, {len(split.validation)} validation windows")

    model_config = ModelConfig(
        image_height=image_size,
        image_width=image_size,
        pooling_height=image_size,  # one-pixel configuration
        pooling_width=image_size,
        cnn_channels=(4,),
        rnn_hidden_size=16,
    )
    training_config = TrainingConfig(batch_size=32, max_epochs=15, steps_per_epoch=4, seed=7)

    predictors = {
        "Img+RF (1-pixel)": MultimodalSplitPredictor(model_config, training_config),
        "Img-only (1-pixel)": ImageOnlyPredictor(model_config, training_config),
        "RF-only": RFOnlyPredictor(model_config, training_config),
    }

    print("\nTraining the three schemes compared in the paper ...")
    for name, predictor in predictors.items():
        history = predictor.fit(split.train, split.validation)
        print(
            f"  {name:<20s} best RMSE {history.best_rmse_db:5.2f} dB  "
            f"simulated training time {history.total_elapsed_s:6.2f} s  "
            f"({len(history.records)} epochs)"
        )

    best = min(predictors, key=lambda n: predictors[n].history.best_rmse_db)
    print(f"\nBest scheme on this run: {best}")


if __name__ == "__main__":
    main()
