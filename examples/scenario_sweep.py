"""Sweep one experiment across scenarios and seeds with the orchestrator.

The paper evaluates a single corridor scene; the scenario registry opens the
same pipeline to any environment you can describe — denser crowds, faster
walkers, longer corridors, wider camera optics — and the sweep orchestrator
runs {scenario x seed} grids in parallel with content-addressed dataset
caching, aggregating mean/std metrics per scenario.

This script prints the built-in catalog, registers a custom scenario, and runs
a small Table-1 sweep over three scenarios (the equivalent CLI is
``python -m repro.experiments.sweep --scenarios ... --seeds 2``).

Run with:  python examples/scenario_sweep.py
"""
from __future__ import annotations

from repro.experiments import SweepConfig, format_summary, run_sweep
from repro.scenarios import (
    Scenario,
    get_scenario,
    register,
    scenario_names,
)
from repro.scene.actors import PedestrianTrafficConfig


def main() -> None:
    print("Registered scenario catalog:\n")
    for name in scenario_names():
        print(f"  {get_scenario(name).describe()}")

    # Custom scenarios are one register() call away; they are content-hashed,
    # so datasets generated for them are cached like any built-in preset.
    register(
        Scenario(
            name="evening_rush",
            description="Dense, hurried traffic: the worst case for the link.",
            traffic=PedestrianTrafficConfig(
                mean_interarrival_s=1.2, speed_range_mps=(1.6, 2.4)
            ),
        ),
        overwrite=True,
    )

    print("\nRunning a Table-1 sweep: 3 scenarios x 2 seeds (smoke scale) ...\n")
    artifact = run_sweep(
        SweepConfig(
            scenarios=("paper_baseline", "dense_crowd", "evening_rush"),
            seeds=(0, 1),
            experiment="table1",
            scale="smoke",
        )
    )
    print(format_summary(artifact))
    print(
        "\nRe-running this script reuses the cached datasets; pass different "
        "seeds or scenarios to extend the grid."
    )


if __name__ == "__main__":
    main()
