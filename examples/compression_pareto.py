"""Trade accuracy against wall-clock with cut-layer payload codecs.

The paper ships the cut-layer activations and gradients at full float32
width over the lossy 60 GHz link.  The codec layer (`repro.split.codecs`)
can compress them instead:

* ``identity`` — the paper's float32 baseline, bit-for-bit;
* ``uint8`` / ``int4`` — per-tensor dynamic-range uniform quantization
  (the UE CNN ends in a sigmoid, so activations are bounded in [0, 1]);
* ``topk`` — magnitude top-k sparsification with error feedback: values
  left behind accumulate in a residual and compensate later steps.

The ARQ layer transmits the *encoded* payload sizes, so slot counts — and
therefore the simulated wall-clock — respond to compression, while the BS
trains on the *decoded* (lossy) tensors.  This script runs the Pareto
experiment at the fast scale and prints the accuracy/latency frontier —
the same numbers the ``fig_compression_pareto`` CLI writes to its JSON
artifact:

    python -m repro.experiments.fig_compression_pareto --scale fast

Run with:  python examples/compression_pareto.py
"""
from __future__ import annotations

from repro.experiments import (
    ExperimentScale,
    prepare_split,
    run_compression_pareto,
)


def main() -> None:
    scale = ExperimentScale.fast()
    split = prepare_split(scale)

    print("Compression Pareto at fast scale (all codecs) ...\n")
    result = run_compression_pareto(scale=scale, split=split)
    print(result.format_table())

    identity = result.history("identity")
    for codec in result.codecs:
        if codec == "identity":
            continue
        history = result.history(codec)
        bits_ratio = (
            result.uplink_payload_bits["identity"]
            / result.uplink_payload_bits[codec]
        )
        speedup = identity.total_elapsed_s / history.total_elapsed_s
        print(
            f"\n{codec}: {bits_ratio:.1f}x smaller uplink payloads, "
            f"{speedup:.2f}x faster simulated run, "
            f"{history.final_rmse_db - identity.final_rmse_db:+.3f} dB final RMSE"
        )

    # A sparser top-k run: keep 1% of the cut tensor instead of 5%.  Error
    # feedback keeps training stable; the payload shrinks by another ~5x.
    sparse = run_compression_pareto(
        scale=scale, split=split, codecs=("topk",), topk_fraction=0.01
    )
    history = sparse.history("topk")
    print(
        f"\ntopk @ 1%: {sparse.uplink_payload_bits['topk']:.0f} uplink bits/step, "
        f"final RMSE {history.final_rmse_db:.2f} dB"
    )

    # The fast scale pools to one pixel, so every codec fits in a single
    # slot and the simulated times coincide.  At the paper's hardest
    # configuration (40x40, no pooling) the slot counts diverge sharply:
    from repro.channel import PAPER_CHANNEL_PARAMS, PayloadModel, WirelessLink
    from repro.split.codecs import codec_from_name

    link = WirelessLink(params=PAPER_CHANNEL_PARAMS, direction="uplink")
    payload = PayloadModel(pooling_height=1, pooling_width=1)
    elements = payload.values_per_image * payload.sequence_length * 4
    print("\nexpected uplink slots at 40x40 / no pooling (batch 4):")
    for codec in result.codecs:
        bits = codec_from_name(codec).sized_payload_bits(elements)
        print(f"  {codec:<9s} {link.expected_slots(bits):>7.2f} slots/step")


if __name__ == "__main__":
    main()
