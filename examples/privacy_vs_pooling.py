"""Reproduce the Table 1 trade-off: privacy leakage vs decoding success.

The pooling region of the UE-side average-pooling layer is the single knob of
the paper: larger pooling regions shrink the transmitted cut-layer payload
(raising the per-slot decoding success probability towards 1) and destroy more
of the raw image structure (reducing the MDS-based privacy leakage).

The script prints, for each pooling region, the uplink payload of one
minibatch, the closed-form decoding success probability under the paper's
channel parameters, and the privacy leakage measured on synthetic depth
frames.

Run with:  python examples/privacy_vs_pooling.py
"""
from __future__ import annotations

from repro.experiments import (
    ExperimentScale,
    PAPER_TABLE1,
    run_paper_success_probabilities,
    run_table1,
)


def main() -> None:
    print("Closed-form success probabilities with the paper's exact geometry")
    print("(40x40 images, minibatch 64, 32-bit activations, paper channel):\n")
    paper_values = run_paper_success_probabilities()
    print(f"  {'pooling':>8s} {'reproduced':>11s} {'paper':>7s}")
    for pooling, probability in paper_values.items():
        paper = PAPER_TABLE1[pooling]["success_probability"]
        print(f"  {pooling:>5d}x{pooling:<2d} {probability:>11.4f} {paper:>7.3f}")

    print("\nPrivacy leakage and payload on a synthetic dataset (fast scale):\n")
    result = run_table1(ExperimentScale.fast())
    print(result.format_table())
    print(
        "\nLeakage decreases and success probability increases with the pooling "
        "region; the one-pixel configuration achieves the best of both, as in "
        "Table 1 of the paper."
    )


if __name__ == "__main__":
    main()
